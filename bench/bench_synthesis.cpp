// Synthesis harness: gate counts of transformation-based synthesis over
// structured and random reversible functions, each result verified against
// its specification with canonical decision diagrams — closing the loop
// over all three design tasks the paper's abstract names (simulation,
// synthesis, verification).

#include "BenchUtil.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/synth/Synthesis.hpp"

#include <cstdio>
#include <numeric>
#include <random>

using namespace qdd;

namespace {

bool verifySynthesis(const ir::QuantumComputation& qc,
                     const std::vector<std::uint64_t>& perm) {
  Package pkg(qc.numQubits());
  const mEdge spec = synth::buildPermutationDD(pkg, perm);
  const mEdge impl = bridge::buildFunctionality(qc, pkg);
  return spec.p == impl.p && spec.w.approximatelyEquals(impl.w, 1e-9);
}

std::vector<std::uint64_t> increment(std::size_t n) {
  std::vector<std::uint64_t> perm(1ULL << n);
  for (std::size_t x = 0; x < perm.size(); ++x) {
    perm[x] = (x + 1) & (perm.size() - 1);
  }
  return perm;
}

std::vector<std::uint64_t> bitReversal(std::size_t n) {
  std::vector<std::uint64_t> perm(1ULL << n);
  for (std::size_t x = 0; x < perm.size(); ++x) {
    std::uint64_t rev = 0;
    for (std::size_t b = 0; b < n; ++b) {
      rev |= ((x >> b) & 1ULL) << (n - 1 - b);
    }
    perm[x] = rev;
  }
  return perm;
}

std::vector<std::uint64_t> randomPermutation(std::size_t n,
                                             std::uint64_t seed) {
  std::vector<std::uint64_t> perm(1ULL << n);
  std::iota(perm.begin(), perm.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

} // namespace

int main() {
  bench::heading("transformation-based synthesis (MMD) + DD verification");
  std::printf("%-16s %-6s %-10s %-12s %-12s %-10s\n", "function", "n",
              "gates", "max ctrls", "synth (ms)", "verified");
  bench::rule();
  struct Case {
    const char* name;
    std::vector<std::uint64_t> perm;
  };
  std::vector<Case> cases;
  for (const std::size_t n : {3U, 5U, 7U}) {
    cases.push_back({"increment", increment(n)});
  }
  for (const std::size_t n : {3U, 5U, 7U}) {
    cases.push_back({"bit-reversal", bitReversal(n)});
  }
  for (const std::size_t n : {3U, 4U, 5U, 6U}) {
    cases.push_back({"random", randomPermutation(n, n)});
  }
  for (const auto& c : cases) {
    std::size_t n = 0;
    while ((1ULL << n) < c.perm.size()) {
      ++n;
    }
    ir::QuantumComputation qc;
    const double ms =
        bench::timeMs([&] { qc = synth::synthesizePermutation(c.perm); });
    const auto stats = synth::analyze(qc);
    const bool ok = n <= 10 && verifySynthesis(qc, c.perm);
    std::printf("%-16s %-6zu %-10zu %-12zu %-12.2f %-10s\n", c.name, n,
                stats.gates, stats.maxControls, ms,
                ok ? "yes (canonical DDs)" : "FAILED");
  }
  std::printf("\nStructured functions synthesize into short cascades; "
              "random permutations approach the exponential worst case — "
              "mirroring the compactness behaviour of the DDs "
              "themselves.\n");
  return 0;
}
