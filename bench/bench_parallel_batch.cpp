// Scaling curves of the qdd::exec subsystem: batch simulation across a
// work-stealing pool with per-worker DD packages, chunked parallel sampling,
// and the portfolio equivalence checker racing both alternating directions.
//
// Emits one grep-able `BENCH_PARALLEL <label> {json}` record per workload,
// consumed by scripts/check_bench_parallel.py (--record / --check). Every
// record carries `hardwareConcurrency`: the speedup gates only apply on
// machines with enough cores (a 1-core container cannot show a 3x speedup,
// but the determinism checks still run everywhere and the honest numbers
// still get recorded).

#include "BenchUtil.hpp"

#include "qdd/exec/Batch.hpp"
#include "qdd/exec/Portfolio.hpp"
#include "qdd/exec/ThreadPool.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace qdd;

namespace {

const std::vector<std::size_t> WORKER_COUNTS{1, 2, 4, 8};

/// True when two batch results agree per circuit — node counts and sampled
/// histograms both bit-identical (the determinism contract: results depend
/// on the task index, never on scheduling).
bool sameResults(const exec::BatchResult& a, const exec::BatchResult& b) {
  if (a.circuits.size() != b.circuits.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.circuits.size(); ++i) {
    const auto& ca = a.circuits[i];
    const auto& cb = b.circuits[i];
    if (ca.finalNodes != cb.finalNodes || ca.peakNodes != cb.peakNodes ||
        ca.sampling.counts != cb.sampling.counts || ca.error != cb.error) {
      return false;
    }
  }
  return true;
}

std::string workerTimesJson(const std::vector<double>& ms) {
  std::string out = "{";
  for (std::size_t i = 0; i < WORKER_COUNTS.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%zu\": %.3f", i > 0 ? ", " : "",
                  WORKER_COUNTS[i], ms[i]);
    out += buf;
  }
  return out + "}";
}

double speedup(const std::vector<double>& ms, std::size_t workers) {
  for (std::size_t i = 0; i < WORKER_COUNTS.size(); ++i) {
    if (WORKER_COUNTS[i] == workers && ms[i] > 0.) {
      return ms[0] / ms[i];
    }
  }
  return 0.;
}

} // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware concurrency: %u, pool default: %zu workers\n", cores,
              exec::ThreadPool::defaultWorkers());

  // --- workload 1: batch simulation --------------------------------------
  bench::heading("batch simulation: N circuits across 1/2/4/8 workers");
  const std::size_t batchSize = quick ? 16 : 64;
  const std::size_t qubits = quick ? 10 : 12;
  std::vector<ir::QuantumComputation> circuits;
  circuits.reserve(batchSize);
  for (std::size_t i = 0; i < batchSize; ++i) {
    circuits.push_back(ir::builders::qft(qubits));
  }

  std::vector<double> batchMs;
  exec::BatchResult reference;
  bool identical = true;
  for (const std::size_t w : WORKER_COUNTS) {
    exec::BatchOptions options;
    options.workers = w;
    options.seed = 42;
    options.shots = 256;
    exec::BatchResult result;
    const double ms =
        bench::timeMs([&] { result = exec::simulateBatch(circuits, options); });
    batchMs.push_back(ms);
    if (w == WORKER_COUNTS.front()) {
      reference = std::move(result);
    } else if (!sameResults(reference, result)) {
      identical = false;
    }
    std::printf("  %zu worker(s): %8.2f ms  (%.2fx)\n", w, ms,
                batchMs[0] / ms);
  }
  std::printf("per-circuit results identical across worker counts: %s\n",
              identical ? "yes" : "NO");
  std::printf("BENCH_PARALLEL batch_sim {\"circuits\": %zu, \"qubits\": %zu, "
              "\"shots\": 256, \"workerMs\": %s, \"speedup2\": %.3f, "
              "\"speedup4\": %.3f, \"speedup8\": %.3f, "
              "\"identicalResults\": %s, \"hardwareConcurrency\": %u, "
              "\"resources\": %s}\n",
              batchSize, qubits, workerTimesJson(batchMs).c_str(),
              speedup(batchMs, 2), speedup(batchMs, 4), speedup(batchMs, 8),
              identical ? "true" : "false", cores,
              bench::ResourceUsage::sample().toJson().c_str());

  // --- workload 2: chunked parallel sampling ------------------------------
  bench::heading("parallel sampling: one circuit, shots chunked across "
                 "workers");
  const auto sampleCircuit = ir::builders::qft(quick ? 10 : 14);
  const std::size_t shots = quick ? 4096 : 16384;
  std::vector<double> sampleMs;
  sim::SamplingResult sampleReference;
  bool sampleIdentical = true;
  for (const std::size_t w : WORKER_COUNTS) {
    exec::BatchOptions options;
    options.workers = w;
    options.seed = 7;
    sim::SamplingResult result;
    const double ms = bench::timeMs(
        [&] { result = exec::sampleParallel(sampleCircuit, shots, options); });
    sampleMs.push_back(ms);
    if (w == WORKER_COUNTS.front()) {
      sampleReference = std::move(result);
    } else if (result.counts != sampleReference.counts) {
      sampleIdentical = false;
    }
    std::printf("  %zu worker(s): %8.2f ms  (%.2fx)\n", w, ms,
                sampleMs[0] / ms);
  }
  std::printf("merged histograms identical across worker counts: %s\n",
              sampleIdentical ? "yes" : "NO");
  std::printf("BENCH_PARALLEL sample {\"qubits\": %zu, \"shots\": %zu, "
              "\"workerMs\": %s, \"speedup2\": %.3f, \"speedup4\": %.3f, "
              "\"speedup8\": %.3f, \"identicalResults\": %s, "
              "\"hardwareConcurrency\": %u, \"resources\": %s}\n",
              sampleCircuit.numQubits(), shots,
              workerTimesJson(sampleMs).c_str(), speedup(sampleMs, 2),
              speedup(sampleMs, 4), speedup(sampleMs, 8),
              sampleIdentical ? "true" : "false", cores,
              bench::ResourceUsage::sample().toJson().c_str());

  // --- workload 3: portfolio equivalence checking -------------------------
  bench::heading("portfolio verification vs the two serial directions");
  const auto g1 = ir::builders::qft(quick ? 8 : 11);
  const auto g2 = ir::decomposeToNativeGates(g1, true);
  const verify::EquivalenceChecker forward(g1, g2);
  const verify::EquivalenceChecker backward(g2, g1);

  verify::CheckResult serialLR;
  const double serialLrMs = bench::timeMs([&] {
    Package pkg(g1.numQubits());
    serialLR = forward.checkAlternating(pkg);
  });
  verify::CheckResult serialRL;
  const double serialRlMs = bench::timeMs([&] {
    Package pkg(g1.numQubits());
    serialRL = backward.checkAlternating(pkg);
  });
  exec::PortfolioResult portfolio;
  const double portfolioMs =
      bench::timeMs([&] { portfolio = exec::checkPortfolio(g1, g2); });

  const bool agrees =
      portfolio.result.equivalence == serialLR.equivalence &&
      serialLR.equivalence == serialRL.equivalence;
  const double bestSerialMs = std::min(serialLrMs, serialRlMs);
  const double overhead =
      bestSerialMs > 0. ? portfolioMs / bestSerialMs : 0.;
  std::printf("  serial L->R: %8.2f ms (%s)\n", serialLrMs,
              toString(serialLR.equivalence).c_str());
  std::printf("  serial R->L: %8.2f ms (%s)\n", serialRlMs,
              toString(serialRL.equivalence).c_str());
  std::printf("  portfolio:   %8.2f ms (%s, winner %s)\n", portfolioMs,
              toString(portfolio.result.equivalence).c_str(),
              portfolio.winner.c_str());
  std::printf("  overhead vs best serial direction: %.2fx\n", overhead);
  std::printf("BENCH_PARALLEL portfolio {\"qubits\": %zu, \"serialLrMs\": "
              "%.3f, \"serialRlMs\": %.3f, \"portfolioMs\": %.3f, "
              "\"overheadVsBestSerial\": %.3f, \"agrees\": %s, "
              "\"winner\": \"%s\", \"hardwareConcurrency\": %u, "
              "\"resources\": %s}\n",
              g1.numQubits(), serialLrMs, serialRlMs, portfolioMs, overhead,
              agrees ? "true" : "false", portfolio.winner.c_str(), cores,
              bench::ResourceUsage::sample().toJson().c_str());

  // Nonzero exit on a determinism or agreement violation: these are hard
  // correctness properties, valid on any machine regardless of core count.
  if (!identical || !sampleIdentical || !agrees) {
    std::fprintf(stderr, "FAILURE: determinism/agreement violated\n");
    return 1;
  }
  return 0;
}
