// Simulation scaling study (Sec. III-B: "efficiently simulate quantum
// circuits"): DD-based simulation vs the dense baseline across workload
// classes and qubit counts, locating the crossover where structure makes
// DDs win and where dense representations stay competitive.

#include "BenchUtil.hpp"

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"

#include <cstdio>
#include <functional>

using namespace qdd;

int main() {
  struct Workload {
    const char* name;
    std::function<ir::QuantumComputation(std::size_t)> make;
    std::vector<std::size_t> sizes;
    std::size_t denseLimit;
  };
  const std::vector<Workload> workloads = {
      {"ghz (structured)",
       [](std::size_t n) { return ir::builders::ghz(n); },
       {8, 16, 24, 32, 48, 64},
       24},
      {"bernstein-vazirani",
       [](std::size_t n) { return ir::builders::bernsteinVazirani(n - 1,
                                                                  0x5555555555555555ULL &
                                                                      ((1ULL << (n - 1)) - 1)); },
       {8, 16, 24, 32, 48},
       24},
      {"qft (dense state)",
       [](std::size_t n) { return ir::builders::qft(n); },
       {4, 8, 12, 16},
       16},
      {"random clifford+T",
       [](std::size_t n) { return ir::builders::randomCliffordT(n, 20 * n, 3); },
       {4, 8, 12, 16},
       16},
  };

  std::printf("%-22s %-6s %-8s %-12s %-12s %-12s %-12s\n", "workload", "n",
              "gates", "DD (ms)", "dense (ms)", "final DD", "peak DD");
  bench::rule();
  for (const auto& w : workloads) {
    for (const std::size_t n : w.sizes) {
      const auto qc = w.make(n);
      Package pkg(qc.numQubits());
      bridge::BuildStats stats;
      vEdge result;
      const double ddMs = bench::timeMs([&] {
        result = bridge::simulate(qc, pkg.makeZeroState(qc.numQubits()), pkg,
                                  stats);
      });
      double denseMs = -1.;
      if (qc.numQubits() <= w.denseLimit) {
        baseline::DenseStateVector dense(qc.numQubits());
        denseMs = bench::timeMs([&] { dense.run(qc); });
      }
      if (denseMs >= 0.) {
        std::printf("%-22s %-6zu %-8zu %-12.2f %-12.2f %-12zu %-12zu\n",
                    w.name, n, qc.gateCount(), ddMs, denseMs,
                    Package::size(result), stats.maxNodes);
      } else {
        std::printf("%-22s %-6zu %-8zu %-12.2f %-12s %-12zu %-12zu\n",
                    w.name, n, qc.gateCount(), ddMs, "(2^n too big)",
                    Package::size(result), stats.maxNodes);
      }
    }
    bench::rule();
  }
  std::printf("Shape: for structured states (GHZ, BV) the DD simulates "
              "sizes far beyond dense reach; for QFT/random circuits the "
              "DD approaches worst case and dense vectors win at small n — "
              "the strengths *and* limits the tool is meant to teach.\n");
  return 0;
}
