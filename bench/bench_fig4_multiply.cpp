// Reproduces paper Fig. 4 / Ex. 9: the recursive matrix-vector
// multiplication scheme on decision diagrams, validated against the dense
// baseline and measured against it on structured workloads where the DD
// recursion touches far fewer than 4^n sub-problems.

#include "BenchUtil.hpp"

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"

#include <cmath>
#include <complex>

using namespace qdd;

int main() {
  bench::heading("Ex. 9: U * |phi> decomposed into sub-computations");
  {
    Package pkg(1);
    // [U00 U01; U10 U11] * [a0; a1] on the simplest case: H |0>
    const mEdge h = pkg.makeGateDD(H_MAT, 1, 0);
    const vEdge zero = pkg.makeZeroState(1);
    const vEdge result = pkg.multiply(h, zero);
    std::printf("H|0> amplitudes: <0| = %s, <1| = %s (paper: both "
                "1/sqrt2)\n",
                pkg.getValueByIndex(result, 0).toString(4).c_str(),
                pkg.getValueByIndex(result, 1).toString(4).c_str());
  }

  bench::heading("correctness: DD multiply vs dense multiply (random "
                 "Clifford+T, 6 qubits, 80 gates)");
  {
    const auto qc = ir::builders::randomCliffordT(6, 80, 1);
    Package pkg(6);
    const vEdge dd = bridge::simulate(qc, pkg.makeZeroState(6), pkg);
    baseline::DenseStateVector dense(6);
    dense.run(qc);
    double maxDiff = 0.;
    const auto vec = pkg.getVector(dd);
    for (std::size_t k = 0; k < vec.size(); ++k) {
      maxDiff = std::max(maxDiff, std::abs(vec[k] - dense.amplitudes()[k]));
    }
    std::printf("max amplitude difference: %.3e\n", maxDiff);
  }

  bench::heading("gate application cost: DD vs dense state vector "
                 "(GHZ preparation circuit)");
  std::printf("%-6s %-16s %-16s %-12s\n", "n", "DD time (ms)",
              "dense time (ms)", "DD nodes");
  bench::rule();
  for (std::size_t n = 4; n <= 24; n += 4) {
    const auto qc = ir::builders::ghz(n);
    Package pkg(n);
    vEdge result;
    const double ddMs = bench::timeMs(
        [&] { result = bridge::simulate(qc, pkg.makeZeroState(n), pkg); });
    double denseMs = -1.;
    if (n <= 24) {
      baseline::DenseStateVector dense(n);
      denseMs = bench::timeMs([&] { dense.run(qc); });
    }
    std::printf("%-6zu %-16.3f %-16.3f %-12zu\n", n, ddMs, denseMs,
                Package::size(result));
  }
  std::printf("\nThe DD walks its (linear-size) diagram per gate; the dense "
              "baseline always touches all 2^n amplitudes.\n");
  return 0;
}
