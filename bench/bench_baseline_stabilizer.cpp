// Three-way simulator comparison on Clifford workloads: decision diagrams
// vs the dense state vector (exponential, universal) vs the stabilizer
// tableau (polynomial, Clifford-only). Positions the DD approach between
// the two baselines — general like the dense simulator, compact like the
// tableau wherever structure exists.

#include "BenchUtil.hpp"

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/baseline/StabilizerSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"

#include <cstdio>
#include <random>

using namespace qdd;

namespace {
ir::QuantumComputation randomClifford(std::size_t n, std::size_t depth,
                                      std::uint64_t seed) {
  ir::QuantumComputation qc(n, 0, "clifford");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> gateDist(0, 4);
  std::uniform_int_distribution<std::size_t> qubitDist(0, n - 1);
  for (std::size_t k = 0; k < depth; ++k) {
    const auto q = static_cast<Qubit>(qubitDist(rng));
    switch (gateDist(rng)) {
    case 0:
      qc.h(q);
      break;
    case 1:
      qc.s(q);
      break;
    case 2:
      qc.x(q);
      break;
    case 3:
      qc.z(q);
      break;
    default: {
      Qubit t = q;
      while (t == q) {
        t = static_cast<Qubit>(qubitDist(rng));
      }
      qc.cx(q, t);
      break;
    }
    }
  }
  return qc;
}
} // namespace

int main() {
  bench::heading("random Clifford circuits (depth = 20n): DD vs dense vs "
                 "tableau");
  std::printf("%-6s %-10s %-12s %-12s %-12s %-12s\n", "n", "gates",
              "DD (ms)", "dense (ms)", "tableau(ms)", "final DD");
  bench::rule();
  for (const std::size_t n : {4U, 8U, 12U, 16U, 20U}) {
    const auto qc = randomClifford(n, 20 * n, n);
    double ddMs = 0.;
    std::size_t ddNodes = 0;
    {
      Package pkg(n);
      vEdge result;
      ddMs = bench::timeMs(
          [&] { result = bridge::simulate(qc, pkg.makeZeroState(n), pkg); });
      ddNodes = Package::size(result);
    }
    double denseMs = -1.;
    if (n <= 20) {
      baseline::DenseStateVector dense(n);
      denseMs = bench::timeMs([&] { dense.run(qc); });
    }
    baseline::StabilizerSimulator stab(n);
    const double stabMs = bench::timeMs([&] { stab.run(qc); });
    if (denseMs >= 0.) {
      std::printf("%-6zu %-10zu %-12.2f %-12.2f %-12.2f %-12zu\n", n,
                  qc.gateCount(), ddMs, denseMs, stabMs, ddNodes);
    } else {
      std::printf("%-6zu %-10zu %-12.2f %-12s %-12.2f %-12zu\n", n,
                  qc.gateCount(), ddMs, "(2^n)", stabMs, ddNodes);
    }
  }
  std::printf("\nGHZ circuits (maximal structure):\n");
  std::printf("%-6s %-12s %-12s\n", "n", "DD (ms)", "tableau (ms)");
  bench::rule();
  for (const std::size_t n : {16U, 32U, 64U, 96U}) {
    const auto qc = ir::builders::ghz(n);
    Package pkg(n);
    const double ddMs = bench::timeMs(
        [&] { (void)bridge::simulate(qc, pkg.makeZeroState(n), pkg); });
    baseline::StabilizerSimulator stab(n);
    const double stabMs = bench::timeMs([&] { stab.run(qc); });
    std::printf("%-6zu %-12.2f %-12.2f\n", n, ddMs, stabMs);
  }
  std::printf("\nThe tableau wins on arbitrary Clifford circuits (poly "
              "always; random stabilizer states can even have exponential "
              "DDs — the motivation for LIMDD-style successors); the "
              "dense vector is universal but always exponential; DDs are "
              "universal and match the tableau's scaling wherever states "
              "are structured.\n");
  return 0;
}
