// Reproduces paper Ex. 12 quantitatively: verifying the equivalence of the
// three-qubit QFT and its compiled version requires a maximum of 9 nodes
// with the barrier-synchronized alternating scheme, versus 21 nodes when
// building the entire system matrix — and shows how that gap widens with
// the number of qubits (the core result of [20]).

#include "BenchUtil.hpp"

#include "qdd/ir/Builders.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <cstdio>

using namespace qdd;

int main() {
  bench::heading("Ex. 12: three-qubit QFT vs compiled QFT");
  {
    const auto qft = ir::builders::qft(3);
    const auto compiled = ir::decomposeToNativeGates(qft, true);
    const verify::EquivalenceChecker checker(qft, compiled);
    Package pkg(3);
    const auto seq =
        checker.checkAlternating(pkg, verify::Strategy::Sequential);
    const auto sync =
        checker.checkAlternating(pkg, verify::Strategy::BarrierSync);
    std::printf("full construction (sequential): max %zu nodes (paper: "
                "21)\n",
                seq.maxNodes);
    std::printf("alternating (barrier-sync):     max %zu nodes (paper: "
                "9)\n",
                sync.maxNodes);
    std::printf("both conclude: %s / %s\n",
                toString(seq.equivalence).c_str(),
                toString(sync.equivalence).c_str());
  }

  bench::heading("scaling: peak nodes per strategy (QFT_n vs compiled "
                 "QFT_n)");
  std::printf("%-4s %-14s %-14s %-14s %-14s %-10s\n", "n", "sequential",
              "one-to-one", "proportional", "barrier-sync", "worst");
  bench::rule();
  for (std::size_t n = 2; n <= 9; ++n) {
    const auto qft = ir::builders::qft(n);
    const auto compiled = ir::decomposeToNativeGates(qft, true);
    const verify::EquivalenceChecker checker(qft, compiled);
    std::size_t peaks[4] = {};
    const verify::Strategy strategies[] = {
        verify::Strategy::Sequential, verify::Strategy::OneToOne,
        verify::Strategy::Proportional, verify::Strategy::BarrierSync};
    for (int s = 0; s < 4; ++s) {
      Package pkg(n);
      const auto result = checker.checkAlternating(pkg, strategies[s]);
      peaks[s] = result.maxNodes;
      if (result.equivalence != verify::Equivalence::Equivalent) {
        std::printf("UNEXPECTED verdict for n=%zu strategy=%s\n", n,
                    toString(strategies[s]).c_str());
      }
    }
    std::size_t worst = 0;
    std::size_t pow = 1;
    for (std::size_t k = 0; k < n; ++k) {
      worst += pow;
      pow *= 4;
    }
    std::printf("%-4zu %-14zu %-14zu %-14zu %-14zu %-10zu\n", n, peaks[0],
                peaks[1], peaks[2], peaks[3], worst);
  }
  std::printf("\nThe alternating scheme keeps the DD near the identity "
              "(linear size) while sequential construction pays the full "
              "exponential QFT matrix — the \"drastic\" reduction of "
              "Sec. III-C.\n");
  return 0;
}
