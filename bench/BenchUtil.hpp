#pragma once

// Shared helpers for the figure-reproduction benchmark harness.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace qdd::bench {

/// Wall-clock milliseconds of a callable.
inline double timeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("------------------------------------------------------------"
              "----------\n");
}

} // namespace qdd::bench
