#pragma once

// Shared helpers for the figure-reproduction benchmark harness.

#include "qdd/dd/Package.hpp"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace qdd::bench {

/// Wall-clock milliseconds of a callable.
inline double timeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("------------------------------------------------------------"
              "----------\n");
}

/// Emits one grep-able record with the package's full statistics registry
/// (unique-table hit ratios and rehash counts, compute-table hits and stale
/// rejections, GC generation) as single-line JSON:
///   BENCH_STATS <label> {...}
inline void emitStatsJson(const std::string& label, const Package& pkg) {
  std::printf("BENCH_STATS %s %s\n", label.c_str(),
              pkg.statistics().toJson(false).c_str());
}

} // namespace qdd::bench
