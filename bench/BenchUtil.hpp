#pragma once

// Shared helpers for the figure-reproduction benchmark harness.

#include "qdd/dd/Package.hpp"
#include "qdd/obs/Obs.hpp"
#include "qdd/obs/Sinks.hpp"

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace qdd::bench {

/// Anchor for process wall time, initialized during static initialization
/// (i.e. effectively at process start, before main runs).
inline const std::chrono::steady_clock::time_point processStart =
    std::chrono::steady_clock::now();

/// Wall-clock milliseconds of a callable.
inline double timeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("------------------------------------------------------------"
              "----------\n");
}

/// Process-level resource snapshot accompanying every BENCH_* record:
/// wall time since process start, cumulative user+system CPU time, and the
/// peak resident set size so far. RSS/CPU come from getrusage(2) where
/// available and read as zero elsewhere.
struct ResourceUsage {
  double wallMs = 0.;
  double cpuMs = 0.;
  std::size_t peakRssKb = 0;

  static ResourceUsage sample() {
    ResourceUsage u;
    u.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - processStart)
                   .count();
#if defined(__unix__) || defined(__APPLE__)
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
      const auto toMs = [](const timeval& tv) {
        return 1000. * static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) / 1000.;
      };
      u.cpuMs = toMs(ru.ru_utime) + toMs(ru.ru_stime);
#if defined(__APPLE__)
      u.peakRssKb = static_cast<std::size_t>(ru.ru_maxrss) / 1024; // bytes
#else
      u.peakRssKb = static_cast<std::size_t>(ru.ru_maxrss); // kilobytes
#endif
    }
#endif
    return u;
  }

  [[nodiscard]] std::string toJson() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"wallMs\": %.3f, \"cpuMs\": %.3f, \"peakRssKb\": %zu}",
                  wallMs, cpuMs, peakRssKb);
    return buf;
  }
};

/// Emits one grep-able record with the package's full statistics registry
/// (unique-table hit ratios and rehash counts, compute-table hits and stale
/// rejections, GC generation) plus the process resource usage as
/// single-line JSON:
///   BENCH_STATS <label> {"stats": {...}, "resources": {...}}
inline void emitStatsJson(const std::string& label, const Package& pkg) {
  std::printf("BENCH_STATS %s {\"stats\": %s, \"resources\": %s}\n",
              label.c_str(), pkg.statistics().toJson(false).c_str(),
              ResourceUsage::sample().toJson().c_str());
}

/// Like emitStatsJson, but splices one extra top-level JSON member between
/// the stats and resources objects. `extra` must be a complete member, e.g.
/// `"gateCache": {"hits": 3}`.
inline void emitStatsJson(const std::string& label, const Package& pkg,
                          const std::string& extra) {
  std::printf("BENCH_STATS %s {\"stats\": %s, %s, \"resources\": %s}\n",
              label.c_str(), pkg.statistics().toJson(false).c_str(),
              extra.c_str(), ResourceUsage::sample().toJson().c_str());
}

/// Runs `fn` with the observability layer enabled and an in-memory
/// aggregator attached, then emits one grep-able record:
///   BENCH_PROFILE <label> {"aggregate": {...}, "resources": {...}}
/// Returns the wall-clock milliseconds of the instrumented run. Any sinks
/// registered before the call are preserved untouched; the helper's
/// aggregator is removed again afterwards.
inline double profiledRun(const std::string& label,
                          const std::function<void()>& fn) {
  auto agg = std::make_shared<obs::AggregatorSink>();
  auto& registry = obs::Registry::instance();
  registry.addSink(agg);
  const bool wasEnabled = registry.enabled();
  registry.setEnabled(true);
  const double ms = timeMs(fn);
  registry.setEnabled(wasEnabled);
  registry.removeSink(agg);
  std::printf("BENCH_PROFILE %s {\"wallMs\": %.3f, \"aggregate\": %s, "
              "\"resources\": %s}\n",
              label.c_str(), ms, agg->toJson().c_str(),
              ResourceUsage::sample().toJson().c_str());
  return ms;
}

} // namespace qdd::bench
