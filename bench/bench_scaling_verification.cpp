// Verification scaling study (Sec. III-C / [20]): equivalence checking via
// full construction vs the alternating scheme vs simulation-based checking,
// over qubit count and for both equivalent and non-equivalent instances.

#include "BenchUtil.hpp"

#include "qdd/ir/Builders.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <cstdio>
#include <string>

using namespace qdd;

int main() {
  bench::heading("equivalent instances: QFT_n vs compiled QFT_n");
  std::printf("%-4s %-26s %-26s %-12s %-18s\n", "n",
              "construction (ms, peak)", "alternating (ms, peak)",
              "gate-cache", "simulation-16 (ms)");
  bench::rule();
  for (std::size_t n = 2; n <= 9; ++n) {
    const auto qft = ir::builders::qft(n);
    const auto compiled = ir::decomposeToNativeGates(qft, true);
    const verify::EquivalenceChecker checker(qft, compiled);

    Package p1(n);
    verify::CheckResult cons;
    const double consMs =
        bench::timeMs([&] { cons = checker.checkByConstruction(p1); });
    Package p2(n);
    verify::CheckResult alt;
    const double altMs = bench::timeMs(
        [&] { alt = checker.checkAlternating(p2, verify::Strategy::BarrierSync); });
    Package p3(n);
    verify::CheckResult simr;
    const double simMs =
        bench::timeMs([&] { simr = checker.checkBySimulation(p3, 16); });

    std::printf("%-4zu %8.2f ms, %-10zu %8.2f ms, %-10zu %5.0f%% hits %8.2f "
                "ms\n",
                n, consMs, cons.maxNodes, altMs, alt.maxNodes,
                alt.gateCacheHitRatio() * 100., simMs);
    if (!cons.consideredEquivalent() || !alt.consideredEquivalent() ||
        !simr.consideredEquivalent()) {
      std::printf("UNEXPECTED verdict at n=%zu\n", n);
    }
    char gateCache[160];
    std::snprintf(gateCache, sizeof(gateCache),
                  "\"gateCache\": {\"lookups\": %zu, \"hits\": %zu, "
                  "\"hitRatio\": %.4f}",
                  alt.gateCacheLookups, alt.gateCacheHits,
                  alt.gateCacheHitRatio());
    bench::emitStatsJson("verify_alt_qft_" + std::to_string(n), p2,
                         gateCache);
  }

  bench::heading("non-equivalent instances (random circuit + injected "
                 "error)");
  std::printf("%-4s %-22s %-22s %-22s\n", "n", "construction", "alternating",
              "simulation");
  bench::rule();
  for (std::size_t n = 4; n <= 8; n += 2) {
    const auto base = ir::builders::randomCliffordT(n, 20 * n, n);
    auto broken = base;
    broken.t(static_cast<Qubit>(n / 2));
    const verify::EquivalenceChecker checker(base, broken);
    Package p1(n);
    const double consMs = bench::timeMs(
        [&] { (void)checker.checkByConstruction(p1); });
    Package p2(n);
    const double altMs = bench::timeMs(
        [&] { (void)checker.checkAlternating(p2); });
    Package p3(n);
    const double simMs = bench::timeMs(
        [&] { (void)checker.checkBySimulation(p3, 16); });
    std::printf("%-4zu %10.2f ms %15.2f ms %15.2f ms\n", n, consMs, altMs,
                simMs);
  }
  std::printf("\nShape: simulation disproves fastest (a single "
              "counterexample suffices); the alternating scheme dominates "
              "construction on equivalent compiled circuits (Ex. 12).\n");
  return 0;
}
