// Google-benchmark micro-benchmarks for the decision-diagram package
// primitives (footnote 4: unique tables and compute tables "reduce the
// number of computations necessary" — these benches quantify the core ops).

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/ir/Builders.hpp"

#include <benchmark/benchmark.h>

#include <random>

namespace {

using namespace qdd;

void BM_ComplexTableLookup(benchmark::State& state) {
  ComplexTable table;
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<ComplexValue> values;
  values.reserve(1024);
  for (int k = 0; k < 1024; ++k) {
    values.emplace_back(dist(rng), dist(rng));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(values[i & 1023U]));
    ++i;
  }
}
BENCHMARK(BM_ComplexTableLookup);

void BM_MakeGateDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Package pkg(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pkg.makeGateDD(H_MAT, n, static_cast<Qubit>(n / 2)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MakeGateDD)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_MakeControlledGateDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Package pkg(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.makeGateDD(
        X_MAT, n, {{0, true}, {static_cast<Qubit>(n - 1), true}},
        static_cast<Qubit>(n / 2)));
  }
}
BENCHMARK(BM_MakeControlledGateDD)->RangeMultiplier(2)->Range(4, 64);

void BM_ApplyGateGHZ(benchmark::State& state) {
  // one H application to an n-qubit GHZ state (linear-size DD)
  const auto n = static_cast<std::size_t>(state.range(0));
  Package pkg(n);
  const vEdge ghz = pkg.makeGHZState(n);
  pkg.incRef(ghz);
  const mEdge h = pkg.makeGateDD(H_MAT, n, static_cast<Qubit>(n / 2));
  pkg.incRef(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.multiply(h, ghz));
    pkg.garbageCollect();
  }
}
BENCHMARK(BM_ApplyGateGHZ)->RangeMultiplier(2)->Range(8, 64);

void BM_AddStates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Package pkg(n);
  const vEdge a = pkg.makeGHZState(n);
  const vEdge b = pkg.makeWState(n);
  pkg.incRef(a);
  pkg.incRef(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.add(a, b));
    pkg.garbageCollect();
  }
}
BENCHMARK(BM_AddStates)->RangeMultiplier(2)->Range(8, 64);

void BM_KronIdentity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Package pkg(n + 1);
  const mEdge id = pkg.makeIdent(n);
  const mEdge h = pkg.makeGateDD(H_MAT, 1, 0);
  pkg.incRef(id);
  pkg.incRef(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.kron(id, h));
    pkg.garbageCollect();
  }
}
BENCHMARK(BM_KronIdentity)->RangeMultiplier(2)->Range(8, 32);

void BM_SimulateGHZ(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto qc = ir::builders::ghz(n);
  for (auto _ : state) {
    Package pkg(n);
    benchmark::DoNotOptimize(
        bridge::simulate(qc, pkg.makeZeroState(n), pkg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimulateGHZ)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_SimulateQFT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto qc = ir::builders::qft(n);
  for (auto _ : state) {
    Package pkg(n);
    benchmark::DoNotOptimize(
        bridge::simulate(qc, pkg.makeZeroState(n), pkg));
  }
}
BENCHMARK(BM_SimulateQFT)->DenseRange(4, 14, 2);

void BM_SampleGHZ(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Package pkg(n);
  const vEdge ghz = pkg.makeGHZState(n);
  pkg.incRef(ghz);
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.sample(ghz, rng));
  }
}
BENCHMARK(BM_SampleGHZ)->RangeMultiplier(2)->Range(8, 64);

void BM_MeasureCollapse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Package pkg(n);
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    vEdge ghz = pkg.makeGHZState(n);
    pkg.incRef(ghz);
    benchmark::DoNotOptimize(pkg.measureOneCollapsing(ghz, 0, rng));
    pkg.decRef(ghz);
    pkg.garbageCollect();
  }
}
BENCHMARK(BM_MeasureCollapse)->RangeMultiplier(2)->Range(8, 32);

void BM_InnerProduct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Package pkg(n);
  const vEdge a = pkg.makeGHZState(n);
  const vEdge b = pkg.makeWState(n);
  pkg.incRef(a);
  pkg.incRef(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkg.innerProduct(a, b));
  }
}
BENCHMARK(BM_InnerProduct)->RangeMultiplier(2)->Range(8, 64);

} // namespace

BENCHMARK_MAIN();
