// Measures the overhead of the observability layer (qdd::obs) on a
// 10-qubit QFT simulation and asserts the acceptance bound: the fully
// instrumented run (registry enabled, aggregator sink attached) must stay
// within 10% of the uninstrumented wall time. Exits nonzero when the bound
// is violated, so CI catches instrumentation creeping into the hot paths.
//
// Methodology: the workload (full stepwise simulation of QFT(10), which
// exercises the parser-free sim path — Package construction, per-gate
// multiply, per-step metrics capture) is repeated enough times per trial to
// dominate timer noise, and the minimum over several trials is compared —
// min-of-N is the standard estimator for "how fast can this code run"
// because it discards scheduler interference rather than averaging it in.

#include "BenchUtil.hpp"

#include "qdd/ir/Builders.hpp"
#include "qdd/obs/Obs.hpp"
#include "qdd/obs/Sinks.hpp"
#include "qdd/sim/SimulationSession.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace qdd;

int main() {
  constexpr std::size_t QUBITS = 10;
  constexpr int REPS = 10;   // workload repetitions per timed trial
  constexpr int TRIALS = 5;  // min over this many trials

  const auto qft = ir::builders::qft(QUBITS);

  const auto workload = [&] {
    for (int r = 0; r < REPS; ++r) {
      Package pkg(QUBITS);
      sim::SimulationSession session(qft, pkg);
      while (session.stepForward()) {
      }
    }
  };

  bench::heading("observability overhead: 10-qubit QFT simulation");
  workload(); // warm-up (page faults, allocator pools, code paths)

  auto& registry = obs::Registry::instance();
  auto agg = std::make_shared<obs::AggregatorSink>();
  registry.addSink(agg);

  // Interleave the disabled/enabled trials so CPU frequency ramp-up,
  // allocator warm-up, and scheduler noise hit both configurations equally
  // instead of penalizing whichever block runs first. The no-sink
  // configuration isolates the record-construction cost from sink dispatch.
  double disabledMs = 1e300;
  double nosinkMs = 1e300;
  double enabledMs = 1e300;
  for (int t = 0; t < TRIALS; ++t) {
    registry.removeSink(agg);
    registry.setEnabled(false);
    disabledMs = std::min(disabledMs, bench::timeMs(workload));
    registry.setEnabled(true);
    nosinkMs = std::min(nosinkMs, bench::timeMs(workload));
    registry.addSink(agg);
    enabledMs = std::min(enabledMs, bench::timeMs(workload));
  }
  registry.setEnabled(false);
  registry.removeSink(agg);

  const double overheadPct =
      disabledMs > 0. ? 100. * (enabledMs - disabledMs) / disabledMs : 0.;
  std::printf("disabled: %8.3f ms   enabled(no sink): %8.3f ms   "
              "enabled(aggregator): %8.3f ms   overhead: %+.2f%%\n",
              disabledMs, nosinkMs, enabledMs, overheadPct);
  std::printf("BENCH_PROFILE qft%zu_overhead {\"disabledMs\": %.3f, "
              "\"enabledMs\": %.3f, \"overheadPct\": %.2f, \"aggregate\": %s, "
              "\"resources\": %s}\n",
              QUBITS, disabledMs, enabledMs, overheadPct,
              agg->toJson().c_str(),
              bench::ResourceUsage::sample().toJson().c_str());

  // Acceptance bound: within 10% of the uninstrumented time. The +0.5 ms
  // absolute slack keeps sub-millisecond timer jitter from flaking the
  // relative bound when the workload runs fast on a quiet machine.
  const double limitMs = disabledMs * 1.10 + 0.5;
  if (enabledMs > limitMs) {
    std::fprintf(stderr,
                 "FAIL: instrumented run %.3f ms exceeds bound %.3f ms "
                 "(uninstrumented %.3f ms + 10%% + 0.5 ms slack)\n",
                 enabledMs, limitMs, disabledMs);
    return 1;
  }
  std::printf("OK: instrumented run within 10%% of uninstrumented "
              "(+0.5 ms slack)\n");
  return 0;
}
