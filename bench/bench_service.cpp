// Throughput/latency of the qdd::service HTTP session server under
// concurrent interactive clients: each client owns one GHZ-8 simulation
// session and drives it with step/reset requests over a keep-alive
// connection, the workload of the paper's web tool (one request per gate).
//
// Emits one grep-able `BENCH_SERVICE <label> {json}` record per client
// count plus a summary record, consumed by scripts/check_bench_service.py
// (--record / --check). Every record carries `hardwareConcurrency`: the
// scaling gates only apply on machines with enough cores, but the
// correctness gates (zero failed requests, sane latency ordering) run
// everywhere.
//
// Also measures the request-tracing overhead: two extra single-client
// phases against fresh servers — `tracing_off` first (flight-recorder
// arming is process-wide and sticky, so this phase must precede ANY
// tracing-enabled server in the process), then `tracing_on` with the
// full production surface (traceparent, root span, flight recorder,
// incident log wired). check_bench_service.py gates the tracing-on p50
// within 10% of tracing-off.
//
// Two network-core phases ride along:
//   * `threaded_c1` — the same single-client workload against a
//     thread-per-connection server; check_bench_service.py gates the
//     reactor's steps_c1 p50 within 10% of it (the reactor must not tax
//     the fast path).
//   * `idle_spill` — creates a fleet of Bell sessions (10k full /
//     1.5k quick) under a small resident budget, force-spills the rest,
//     and reports the marginal RSS per spilled idle session plus 50
//     post-restore touches. check_bench_service.py gates the RSS per
//     idle session at 4 KiB and zero errors end to end.

#include "BenchUtil.hpp"

#include "qdd/service/Api.hpp"
#include "qdd/service/HttpServer.hpp"
#include "qdd/service/Json.hpp"
#include "qdd/service/Router.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#if defined(__linux__)
#include <malloc.h>
#include <unistd.h>
#endif

using namespace qdd;

namespace {

const std::vector<std::size_t> CLIENT_COUNTS{1, 4, 8, 16, 64};

/// Current (not peak) resident set size; 0 where unmeasurable. The spill
/// phase needs the *live* footprint after the packages were destroyed —
/// getrusage's ru_maxrss only ever grows.
std::size_t currentRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  long pagesTotal = 0;
  long pagesResident = 0;
  const int got = std::fscanf(f, "%ld %ld", &pagesTotal, &pagesResident);
  std::fclose(f);
  if (got != 2 || pagesResident < 0) {
    return 0;
  }
  return static_cast<std::size_t>(pagesResident) *
         static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

/// Hands heap pages freed by destroyed packages back to the OS so the
/// RSS delta measures retained memory, not allocator caching.
void trimHeap() {
#if defined(__GLIBC__)
  ::malloc_trim(0);
#endif
}

struct ClientStats {
  std::vector<double> latenciesMs;
  std::size_t errors = 0;
};

/// One client: create a GHZ-8 session, then loop { step x8, reset } over a
/// keep-alive connection until `requests` requests have been issued. Every
/// request's latency is recorded; any non-2xx answer or malformed DD
/// document counts as an error.
ClientStats runClient(std::uint16_t port, std::size_t requests) {
  ClientStats stats;
  stats.latenciesMs.reserve(requests);
  service::HttpClient client("127.0.0.1", port);

  const auto timed = [&](const char* method, const std::string& target,
                         const std::string& body) {
    const auto start = std::chrono::steady_clock::now();
    auto result = client.request(method, target, body);
    stats.latenciesMs.push_back(std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - start)
                                    .count());
    return result;
  };

  auto created = timed("POST", "/v1/sessions",
                       R"({"builder": {"name": "ghz", "qubits": 8}})");
  if (created.status != 201) {
    ++stats.errors;
    return stats;
  }
  const std::string id =
      service::json::Value::parse(created.body).getString("id", "");
  const std::string stepTarget = "/v1/sessions/" + id + "/step";
  const std::string resetTarget = "/v1/sessions/" + id + "/reset";

  bool atEnd = false;
  while (stats.latenciesMs.size() < requests) {
    const bool reset = atEnd;
    auto result = reset ? timed("POST", resetTarget, "{}")
                        : timed("POST", stepTarget, "{}");
    if (result.status != 200) {
      ++stats.errors;
      continue;
    }
    try {
      const auto doc = service::json::Value::parse(result.body);
      atEnd = doc.getBool("atEnd", false);
      if (!reset && doc.find("dd") == nullptr) {
        ++stats.errors;
      }
    } catch (const service::json::ParseError&) {
      ++stats.errors;
    }
  }
  return stats;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.;
  }
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      p / 100. * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct RunRecord {
  std::size_t clients = 0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  double wallMs = 0.;
  double rps = 0.;
  double p50Ms = 0.;
  double p95Ms = 0.;
};

RunRecord runLoad(std::uint16_t port, std::size_t clients,
                  std::size_t requestsPerClient) {
  std::vector<ClientStats> perClient(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&perClient, c, port, requestsPerClient] {
      perClient[c] = runClient(port, requestsPerClient);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  RunRecord record;
  record.wallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  std::vector<double> all;
  for (const auto& stats : perClient) {
    record.errors += stats.errors;
    record.requests += stats.latenciesMs.size();
    all.insert(all.end(), stats.latenciesMs.begin(),
               stats.latenciesMs.end());
  }
  record.clients = clients;
  record.rps = record.wallMs > 0.
                   ? 1000. * static_cast<double>(record.requests) /
                         record.wallMs
                   : 0.;
  record.p50Ms = percentile(all, 50.);
  record.p95Ms = percentile(all, 95.);
  return record;
}

/// Spins up a fresh server with tracing on or off, drives it with one
/// client, and tears it down again. Isolating each phase in its own
/// server keeps the metrics/incident state of the phases independent.
RunRecord tracingPhase(bool tracing, std::size_t requests) {
  service::ServiceMetrics metrics;
  service::ApiOptions apiOpts;
  apiOpts.maxSessions = 4;
  service::Api api(apiOpts, metrics);
  service::Router router;
  api.install(router);
  service::ServerOptions serverOpts;
  serverOpts.workers = 2;
  serverOpts.tracing = tracing;
  service::HttpServer server(serverOpts, router, metrics);
  if (tracing) {
    server.setIncidentLog(&api.incidents());
  }
  server.start();
  auto record = runLoad(server.port(), 1, requests);
  server.drain();
  server.stop();
  return record;
}

/// Single-client run against a thread-per-connection server, same
/// workload as steps_c1. The p50 of this phase is the parity baseline
/// for the reactor path.
RunRecord threadedPhase(std::size_t requests) {
  service::ServiceMetrics metrics;
  service::ApiOptions apiOpts;
  apiOpts.maxSessions = 4;
  service::Api api(apiOpts, metrics);
  service::Router router;
  api.install(router);
  service::ServerOptions serverOpts;
  serverOpts.workers = 2;
  serverOpts.net = service::NetMode::Threaded;
  service::HttpServer server(serverOpts, router, metrics);
  server.setIncidentLog(&api.incidents());
  server.start();
  auto record = runLoad(server.port(), 1, requests);
  server.drain();
  server.stop();
  return record;
}

struct SpillRecord {
  std::size_t sessions = 0;
  std::size_t spilled = 0;
  std::size_t resident = 0;
  std::size_t errors = 0;
  double createWallMs = 0.;
  double rssPerIdleSessionBytes = 0.; ///< <= 0 when unmeasurable
  std::size_t restoreTouches = 0;
  double touchP50Ms = 0.;
};

/// Creates `sessions` Bell sessions under a 64-session resident budget,
/// force-spills the remainder, measures the marginal RSS per spilled idle
/// session, then touches 50 of them (transparent restore) and checks the
/// answers.
SpillRecord idleSpillPhase(std::size_t sessions, const std::string& dir) {
  SpillRecord rec;
  rec.sessions = sessions;

  service::ServiceMetrics metrics;
  service::ApiOptions apiOpts;
  apiOpts.maxSessions = sessions + 8;
  apiOpts.spillDir = dir;
  apiOpts.maxResidentSessions = 64;
  service::Api api(apiOpts, metrics);
  service::Router router;
  api.install(router);
  service::ServerOptions serverOpts;
  serverOpts.workers = 2;
  service::HttpServer server(serverOpts, router, metrics);
  server.start();

  service::HttpClient client("127.0.0.1", server.port());
  trimHeap();
  const std::size_t rss0 = currentRssBytes();

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto created = client.request(
        "POST", "/v1/sessions", R"({"builder": {"name": "bell"}})");
    if (created.status != 201) {
      ++rec.errors;
    }
  }
  rec.createWallMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();

  // the budget left the hottest 64 resident — spill them too, so the RSS
  // delta is the cost of *idle* sessions only
  auto& store = api.sessions();
  for (const auto& entry : store.list()) {
    if (!entry->spilled.load(std::memory_order_relaxed)) {
      store.spillNow(entry->id);
    }
  }
  trimHeap();
  const std::size_t rss1 = currentRssBytes();
  rec.spilled = store.spilledCount();
  rec.resident = store.residentCount();
  if (rss0 > 0 && rss1 > rss0 && rec.spilled > 0) {
    rec.rssPerIdleSessionBytes = static_cast<double>(rss1 - rss0) /
                                 static_cast<double>(rec.spilled);
  }

  // post-restore touches: a strided sample of the fleet must answer with
  // the session intact (bell -> 2 qubits, position 0)
  std::vector<double> touchMs;
  const std::size_t touches = std::min<std::size_t>(50, sessions);
  for (std::size_t k = 0; k < touches; ++k) {
    const std::size_t pick = 1 + (k * 7919) % sessions;
    const std::string target = "/v1/sessions/s" + std::to_string(pick);
    const auto t0 = std::chrono::steady_clock::now();
    const auto got = client.request("GET", target);
    touchMs.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
    if (got.status != 200) {
      ++rec.errors;
      continue;
    }
    try {
      const auto doc = service::json::Value::parse(got.body);
      if (doc.getNumber("qubits", 0) != 2.) {
        ++rec.errors;
      }
    } catch (const service::json::ParseError&) {
      ++rec.errors;
    }
  }
  rec.restoreTouches = touches;
  rec.touchP50Ms = percentile(touchMs, 50.);
  rec.errors += store.restoreFailures();

  server.drain();
  server.stop();
  return rec;
}

void printRecord(const char* label, const RunRecord& record,
                 unsigned cores) {
  std::printf("BENCH_SERVICE %s {\"clients\": %zu, \"requests\": %zu, "
              "\"errors\": %zu, \"wallMs\": %.3f, \"rps\": %.3f, "
              "\"p50Ms\": %.4f, \"p95Ms\": %.4f, "
              "\"hardwareConcurrency\": %u, \"resources\": %s}\n",
              label, record.clients, record.requests, record.errors,
              record.wallMs, record.rps, record.p50Ms, record.p95Ms, cores,
              bench::ResourceUsage::sample().toJson().c_str());
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  const std::size_t requestsPerClient = quick ? 60 : 400;
  const auto cores = std::thread::hardware_concurrency();

  // Tracing phases first: the flight recorder arms process-wide the moment
  // any tracing-enabled server starts and never disarms, so the off-phase
  // must complete before the tracing-on phase or the main server below.
  bench::heading("qdd::service request tracing overhead (1 client, GHZ-8)");
  std::printf("%8s %10s %10s %10s %8s\n", "tracing", "requests", "p50 ms",
              "p95 ms", "errors");
  const auto tracingOff = tracingPhase(false, requestsPerClient);
  std::printf("%8s %10zu %10.3f %10.3f %8zu\n", "off", tracingOff.requests,
              tracingOff.p50Ms, tracingOff.p95Ms, tracingOff.errors);
  const auto tracingOn = tracingPhase(true, requestsPerClient);
  std::printf("%8s %10zu %10.3f %10.3f %8zu\n", "on", tracingOn.requests,
              tracingOn.p50Ms, tracingOn.p95Ms, tracingOn.errors);
  bench::rule();

  // parity baseline: the legacy thread-per-connection path, one client
  bench::heading("qdd::service thread-per-connection baseline (1 client)");
  const auto threaded = threadedPhase(requestsPerClient);
  std::printf("%8s %10zu %10.3f %10.3f %8zu\n", "threaded",
              threaded.requests, threaded.p50Ms, threaded.p95Ms,
              threaded.errors);
  bench::rule();

  // server shaped like `qdd-tool serve` defaults, sized for the widest
  // run; the reactor front-end is pinned explicitly so the QDD_NET env
  // cannot silently turn the sweep into a threaded run
  service::ServiceMetrics metrics;
  service::ApiOptions apiOpts;
  apiOpts.maxSessions = 2 * CLIENT_COUNTS.back();
  service::Api api(apiOpts, metrics);
  service::Router router;
  api.install(router);
  service::ServerOptions serverOpts;
  serverOpts.workers = std::max<std::size_t>(
      4, std::thread::hardware_concurrency());
  serverOpts.net = service::NetMode::Epoll;
  service::HttpServer server(serverOpts, router, metrics);
  server.start();

  bench::heading("qdd::service step-request throughput (GHZ-8 sessions)");
  std::printf("%8s %10s %10s %10s %10s %8s\n", "clients", "requests",
              "rps", "p50 ms", "p95 ms", "errors");

  std::vector<RunRecord> records;
  for (const std::size_t clients : CLIENT_COUNTS) {
    const auto record = runLoad(server.port(), clients, requestsPerClient);
    std::printf("%8zu %10zu %10.1f %10.3f %10.3f %8zu\n", record.clients,
                record.requests, record.rps, record.p50Ms, record.p95Ms,
                record.errors);
    records.push_back(record);
  }
  bench::rule();

  // spill tier: a big created-then-idle fleet under a small budget
  const std::size_t fleet = quick ? 1500 : 10000;
  const std::string spillDir =
      "/tmp/qdd_bench_spill_" + std::to_string(::getpid());
  ::mkdir(spillDir.c_str(), 0755);
  bench::heading("qdd::service idle-session spill tier (Bell sessions)");
  const auto spill = idleSpillPhase(fleet, spillDir);
  std::printf("%zu sessions: %zu spilled, %zu resident, "
              "%.1f bytes RSS/idle session, touch p50 %.3f ms, %zu errors\n",
              spill.sessions, spill.spilled, spill.resident,
              spill.rssPerIdleSessionBytes, spill.touchP50Ms, spill.errors);
  bench::rule();

  printRecord("tracing_off", tracingOff, cores);
  printRecord("tracing_on", tracingOn, cores);
  printRecord("threaded_c1", threaded, cores);
  for (const auto& record : records) {
    char label[32];
    std::snprintf(label, sizeof(label), "steps_c%zu", record.clients);
    printRecord(label, record, cores);
  }
  std::printf("BENCH_SERVICE idle_spill {\"sessions\": %zu, "
              "\"spilled\": %zu, \"resident\": %zu, "
              "\"rssPerIdleSessionBytes\": %.1f, \"restoreTouches\": %zu, "
              "\"touchP50Ms\": %.4f, \"createWallMs\": %.1f, "
              "\"errors\": %zu, \"hardwareConcurrency\": %u, "
              "\"resources\": %s}\n",
              spill.sessions, spill.spilled, spill.resident,
              spill.rssPerIdleSessionBytes, spill.restoreTouches,
              spill.touchP50Ms, spill.createWallMs, spill.errors, cores,
              bench::ResourceUsage::sample().toJson().c_str());

  const double rps1 = records.front().rps;
  double scale4 = 0.;
  double scale8 = 0.;
  double scale64 = 0.;
  std::size_t totalRequests = 0;
  std::size_t totalErrors = 0;
  for (const auto& record : records) {
    totalRequests += record.requests;
    totalErrors += record.errors;
    if (rps1 > 0. && record.clients == 4) {
      scale4 = record.rps / rps1;
    }
    if (rps1 > 0. && record.clients == 8) {
      scale8 = record.rps / rps1;
    }
    if (rps1 > 0. && record.clients == 64) {
      scale64 = record.rps / rps1;
    }
  }
  std::printf("BENCH_SERVICE summary {\"totalRequests\": %zu, "
              "\"errors\": %zu, \"serverRequests\": %zu, \"scale4\": %.3f, "
              "\"scale8\": %.3f, \"scale64\": %.3f, "
              "\"hardwareConcurrency\": %u, \"resources\": %s}\n",
              totalRequests, totalErrors, metrics.requests(), scale4, scale8,
              scale64, cores, bench::ResourceUsage::sample().toJson().c_str());

  server.drain();
  server.stop();
  totalErrors +=
      tracingOff.errors + tracingOn.errors + threaded.errors + spill.errors;
  return totalErrors == 0 ? 0 : 1;
}
