// Throughput/latency of the qdd::service HTTP session server under
// concurrent interactive clients: each client owns one GHZ-8 simulation
// session and drives it with step/reset requests over a keep-alive
// connection, the workload of the paper's web tool (one request per gate).
//
// Emits one grep-able `BENCH_SERVICE <label> {json}` record per client
// count plus a summary record, consumed by scripts/check_bench_service.py
// (--record / --check). Every record carries `hardwareConcurrency`: the
// scaling gates only apply on machines with enough cores, but the
// correctness gates (zero failed requests, sane latency ordering) run
// everywhere.
//
// Also measures the request-tracing overhead: two extra single-client
// phases against fresh servers — `tracing_off` first (flight-recorder
// arming is process-wide and sticky, so this phase must precede ANY
// tracing-enabled server in the process), then `tracing_on` with the
// full production surface (traceparent, root span, flight recorder,
// incident log wired). check_bench_service.py gates the tracing-on p50
// within 10% of tracing-off.

#include "BenchUtil.hpp"

#include "qdd/service/Api.hpp"
#include "qdd/service/HttpServer.hpp"
#include "qdd/service/Json.hpp"
#include "qdd/service/Router.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace qdd;

namespace {

const std::vector<std::size_t> CLIENT_COUNTS{1, 4, 8};

struct ClientStats {
  std::vector<double> latenciesMs;
  std::size_t errors = 0;
};

/// One client: create a GHZ-8 session, then loop { step x8, reset } over a
/// keep-alive connection until `requests` requests have been issued. Every
/// request's latency is recorded; any non-2xx answer or malformed DD
/// document counts as an error.
ClientStats runClient(std::uint16_t port, std::size_t requests) {
  ClientStats stats;
  stats.latenciesMs.reserve(requests);
  service::HttpClient client("127.0.0.1", port);

  const auto timed = [&](const char* method, const std::string& target,
                         const std::string& body) {
    const auto start = std::chrono::steady_clock::now();
    auto result = client.request(method, target, body);
    stats.latenciesMs.push_back(std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - start)
                                    .count());
    return result;
  };

  auto created = timed("POST", "/v1/sessions",
                       R"({"builder": {"name": "ghz", "qubits": 8}})");
  if (created.status != 201) {
    ++stats.errors;
    return stats;
  }
  const std::string id =
      service::json::Value::parse(created.body).getString("id", "");
  const std::string stepTarget = "/v1/sessions/" + id + "/step";
  const std::string resetTarget = "/v1/sessions/" + id + "/reset";

  bool atEnd = false;
  while (stats.latenciesMs.size() < requests) {
    const bool reset = atEnd;
    auto result = reset ? timed("POST", resetTarget, "{}")
                        : timed("POST", stepTarget, "{}");
    if (result.status != 200) {
      ++stats.errors;
      continue;
    }
    try {
      const auto doc = service::json::Value::parse(result.body);
      atEnd = doc.getBool("atEnd", false);
      if (!reset && doc.find("dd") == nullptr) {
        ++stats.errors;
      }
    } catch (const service::json::ParseError&) {
      ++stats.errors;
    }
  }
  return stats;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.;
  }
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      p / 100. * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct RunRecord {
  std::size_t clients = 0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  double wallMs = 0.;
  double rps = 0.;
  double p50Ms = 0.;
  double p95Ms = 0.;
};

RunRecord runLoad(std::uint16_t port, std::size_t clients,
                  std::size_t requestsPerClient) {
  std::vector<ClientStats> perClient(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&perClient, c, port, requestsPerClient] {
      perClient[c] = runClient(port, requestsPerClient);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  RunRecord record;
  record.wallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  std::vector<double> all;
  for (const auto& stats : perClient) {
    record.errors += stats.errors;
    record.requests += stats.latenciesMs.size();
    all.insert(all.end(), stats.latenciesMs.begin(),
               stats.latenciesMs.end());
  }
  record.clients = clients;
  record.rps = record.wallMs > 0.
                   ? 1000. * static_cast<double>(record.requests) /
                         record.wallMs
                   : 0.;
  record.p50Ms = percentile(all, 50.);
  record.p95Ms = percentile(all, 95.);
  return record;
}

/// Spins up a fresh server with tracing on or off, drives it with one
/// client, and tears it down again. Isolating each phase in its own
/// server keeps the metrics/incident state of the phases independent.
RunRecord tracingPhase(bool tracing, std::size_t requests) {
  service::ServiceMetrics metrics;
  service::ApiOptions apiOpts;
  apiOpts.maxSessions = 4;
  service::Api api(apiOpts, metrics);
  service::Router router;
  api.install(router);
  service::ServerOptions serverOpts;
  serverOpts.workers = 2;
  serverOpts.tracing = tracing;
  service::HttpServer server(serverOpts, router, metrics);
  if (tracing) {
    server.setIncidentLog(&api.incidents());
  }
  server.start();
  auto record = runLoad(server.port(), 1, requests);
  server.drain();
  server.stop();
  return record;
}

void printRecord(const char* label, const RunRecord& record,
                 unsigned cores) {
  std::printf("BENCH_SERVICE %s {\"clients\": %zu, \"requests\": %zu, "
              "\"errors\": %zu, \"wallMs\": %.3f, \"rps\": %.3f, "
              "\"p50Ms\": %.4f, \"p95Ms\": %.4f, "
              "\"hardwareConcurrency\": %u, \"resources\": %s}\n",
              label, record.clients, record.requests, record.errors,
              record.wallMs, record.rps, record.p50Ms, record.p95Ms, cores,
              bench::ResourceUsage::sample().toJson().c_str());
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  const std::size_t requestsPerClient = quick ? 60 : 400;
  const auto cores = std::thread::hardware_concurrency();

  // Tracing phases first: the flight recorder arms process-wide the moment
  // any tracing-enabled server starts and never disarms, so the off-phase
  // must complete before the tracing-on phase or the main server below.
  bench::heading("qdd::service request tracing overhead (1 client, GHZ-8)");
  std::printf("%8s %10s %10s %10s %8s\n", "tracing", "requests", "p50 ms",
              "p95 ms", "errors");
  const auto tracingOff = tracingPhase(false, requestsPerClient);
  std::printf("%8s %10zu %10.3f %10.3f %8zu\n", "off", tracingOff.requests,
              tracingOff.p50Ms, tracingOff.p95Ms, tracingOff.errors);
  const auto tracingOn = tracingPhase(true, requestsPerClient);
  std::printf("%8s %10zu %10.3f %10.3f %8zu\n", "on", tracingOn.requests,
              tracingOn.p50Ms, tracingOn.p95Ms, tracingOn.errors);
  bench::rule();

  // server shaped like `qdd-tool serve` defaults, sized for the widest run
  service::ServiceMetrics metrics;
  service::ApiOptions apiOpts;
  apiOpts.maxSessions = 2 * CLIENT_COUNTS.back();
  service::Api api(apiOpts, metrics);
  service::Router router;
  api.install(router);
  service::ServerOptions serverOpts;
  serverOpts.workers = CLIENT_COUNTS.back();
  service::HttpServer server(serverOpts, router, metrics);
  server.start();

  bench::heading("qdd::service step-request throughput (GHZ-8 sessions)");
  std::printf("%8s %10s %10s %10s %10s %8s\n", "clients", "requests",
              "rps", "p50 ms", "p95 ms", "errors");

  std::vector<RunRecord> records;
  for (const std::size_t clients : CLIENT_COUNTS) {
    const auto record = runLoad(server.port(), clients, requestsPerClient);
    std::printf("%8zu %10zu %10.1f %10.3f %10.3f %8zu\n", record.clients,
                record.requests, record.rps, record.p50Ms, record.p95Ms,
                record.errors);
    records.push_back(record);
  }
  bench::rule();

  printRecord("tracing_off", tracingOff, cores);
  printRecord("tracing_on", tracingOn, cores);
  for (const auto& record : records) {
    char label[32];
    std::snprintf(label, sizeof(label), "steps_c%zu", record.clients);
    printRecord(label, record, cores);
  }

  const double rps1 = records.front().rps;
  double scale4 = 0.;
  double scale8 = 0.;
  std::size_t totalRequests = 0;
  std::size_t totalErrors = 0;
  for (const auto& record : records) {
    totalRequests += record.requests;
    totalErrors += record.errors;
    if (rps1 > 0. && record.clients == 4) {
      scale4 = record.rps / rps1;
    }
    if (rps1 > 0. && record.clients == 8) {
      scale8 = record.rps / rps1;
    }
  }
  std::printf("BENCH_SERVICE summary {\"totalRequests\": %zu, "
              "\"errors\": %zu, \"serverRequests\": %zu, \"scale4\": %.3f, "
              "\"scale8\": %.3f, \"hardwareConcurrency\": %u, "
              "\"resources\": %s}\n",
              totalRequests, totalErrors, metrics.requests(), scale4, scale8,
              cores, bench::ResourceUsage::sample().toJson().c_str());

  server.drain();
  server.stop();
  totalErrors += tracingOff.errors + tracingOn.errors;
  return totalErrors == 0 ? 0 : 1;
}
