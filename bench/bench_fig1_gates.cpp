// Reproduces paper Fig. 1 and Examples 3-5: the Hadamard and controlled-NOT
// matrices, and the state evolution |00> -> (|00>+|10>)/sqrt2 ->
// (|00>+|11>)/sqrt2 of the circuit in Fig. 1(c), computed both with the
// dense baseline and with decision diagrams (which must agree).

#include "BenchUtil.hpp"

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/viz/TextDump.hpp"

#include <cmath>

using namespace qdd;

int main() {
  bench::heading("Fig. 1(a): Hadamard gate H");
  Package pkg(2);
  std::printf("%s",
              viz::formatMatrixOmega(pkg.getMatrix(pkg.makeGateDD(H_MAT, 1, 0)),
                                     1)
                  .c_str());

  bench::heading("Fig. 1(b): Controlled-NOT gate (control q1, target q0)");
  const mEdge cx = pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0);
  std::printf("%s", viz::formatMatrixOmega(pkg.getMatrix(cx), 2).c_str());

  bench::heading("Ex. 3-5: state evolution of the circuit in Fig. 1(c)");
  const auto circuit = ir::builders::bell();
  std::printf("%s\n", circuit.toOpenQASM().c_str());

  // decision diagrams
  vEdge state = pkg.makeZeroState(2);
  std::printf("DD    : %-40s", viz::toDirac(pkg, state).c_str());
  std::printf(" (%zu nodes)\n", Package::size(state));
  state = pkg.multiply(pkg.makeGateDD(H_MAT, 2, 1), state);
  std::printf("after H (x) I2 : %-30s (%zu nodes)\n",
              viz::toDirac(pkg, state).c_str(), Package::size(state));
  state = pkg.multiply(cx, state);
  std::printf("after CNOT     : %-30s (%zu nodes)\n",
              viz::toDirac(pkg, state).c_str(), Package::size(state));

  // dense baseline agreement
  baseline::DenseStateVector dense(2);
  dense.run(circuit);
  double maxDiff = 0.;
  const auto ddVec = pkg.getVector(state);
  for (std::size_t k = 0; k < 4; ++k) {
    maxDiff = std::max(maxDiff, std::abs(ddVec[k] - dense.amplitudes()[k]));
  }
  std::printf("\nmax |DD - dense baseline| over all amplitudes: %.3e\n",
              maxDiff);
  std::printf("paper claim: final state == (|00> + |11>)/sqrt(2): %s\n",
              std::abs(ddVec[0].real() - SQRT2_2) < 1e-10 &&
                      std::abs(ddVec[3].real() - SQRT2_2) < 1e-10
                  ? "REPRODUCED"
                  : "MISMATCH");
  return 0;
}
