// Reproduces paper Fig. 6 / Ex. 11: the decision diagram of the three-qubit
// QFT functionality (21 nodes — the worst case 1 + 4 + 16), canonical
// equality of the abstract and compiled circuits' DDs, and how QFT matrix
// DD sizes scale with the number of qubits (worst-case exponential,
// Sec. III-C: "decision diagrams can still grow exponentially large").

#include "BenchUtil.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/viz/DotExporter.hpp"

#include <cstdio>

using namespace qdd;

int main() {
  bench::heading("Fig. 6: DD of the three-qubit QFT functionality");
  Package pkg(3);
  const auto qft3 = ir::builders::qft(3);
  const mEdge u = bridge::buildFunctionality(qft3, pkg);
  std::printf("nodes: %zu (paper Ex. 12: 21 nodes for the entire system "
              "matrix = 1 + 4 + 16, the maximum for 3 levels)\n",
              Package::size(u));
  const auto compiled = ir::decomposeToNativeGates(qft3, true);
  const mEdge uc = bridge::buildFunctionality(compiled, pkg);
  std::printf("compiled circuit's DD: %s (Ex. 11)\n",
              u.p == uc.p ? "same root pointer -> equivalent"
                          : "different root pointer!");

  // the colored, label-free rendering used for Fig. 6 itself
  const viz::DotExporter exporter({.style = viz::Style::Classic,
                                   .edgeLabels = false,
                                   .colored = true,
                                   .magnitudeThickness = true});
  std::printf("\ncolor-coded DOT export (phase -> HLS wheel, Fig. 7(b)) "
              "has %zu characters\n",
              exporter.toDot(viz::buildGraph(u)).size());

  bench::heading("QFT functionality DD size vs qubits");
  std::printf("%-6s %-16s %-18s %-14s\n", "n", "QFT DD nodes",
              "maximum (worst)", "build time");
  bench::rule();
  for (std::size_t n = 1; n <= 10; ++n) {
    Package p(n);
    const auto qft = ir::builders::qft(n);
    mEdge e;
    const double ms =
        bench::timeMs([&] { e = bridge::buildFunctionality(qft, p); });
    // worst case: sum of 4^k for k = 0..n-1
    std::size_t worst = 0;
    std::size_t pow = 1;
    for (std::size_t k = 0; k < n; ++k) {
      worst += pow;
      pow *= 4;
    }
    std::printf("%-6zu %-16zu %-18zu %8.2f ms\n", n, Package::size(e), worst,
                ms);
  }
  std::printf("\nThe QFT matrix has no redundant sub-blocks: its DD meets "
              "the worst case -> equivalence checking by construction is "
              "expensive, motivating Ex. 12's alternating scheme.\n");
  return 0;
}
