// Reproduces paper Fig. 5 / Ex. 10: the three-qubit QFT circuit, its
// compiled version (controlled phases and the SWAP rewritten into CNOTs +
// phase gates, with barriers at the original gate boundaries), and the
// shared 8x8 functionality matrix in omega notation.

#include "BenchUtil.hpp"

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/viz/CircuitDiagram.hpp"
#include "qdd/viz/TextDump.hpp"

#include <cmath>

using namespace qdd;

int main() {
  const auto qft = ir::builders::qft(3);
  const auto compiled = ir::decomposeToNativeGates(qft, true);

  bench::heading("Fig. 5(a): three-qubit QFT");
  std::printf("%s", viz::circuitToAscii(qft).c_str());
  std::printf("(%zu gates: H, controlled-S = cp(pi/2), controlled-T = "
              "cp(pi/4), SWAP)\n",
              qft.gateCount());

  bench::heading("Fig. 5(b): compiled circuit (CNOT + single-qubit phase "
                 "gates, barriers at original gate boundaries)");
  std::printf("%s", viz::circuitToAscii(compiled, 100).c_str());
  std::printf("(%zu gates)\n", compiled.gateCount());

  bench::heading("Fig. 5(c): functionality of both circuits");
  Package pkg(3);
  const mEdge u1 = bridge::buildFunctionality(qft, pkg);
  std::printf("%s", viz::formatMatrixOmega(pkg.getMatrix(u1), 3).c_str());

  const mEdge u2 = bridge::buildFunctionality(compiled, pkg);
  std::printf("\nboth circuits realize this matrix: DD roots %s\n",
              u1.p == u2.p && u1.w.approximatelyEquals(u2.w, 1e-9)
                  ? "IDENTICAL (canonical representation, Ex. 11)"
                  : "DIFFER (mismatch!)");

  // cross-check against the dense baseline
  baseline::DenseUnitary d1(3);
  d1.run(qft);
  baseline::DenseUnitary d2(3);
  d2.run(compiled);
  std::printf("dense baseline distance between both unitaries: %.3e\n",
              d1.distance(d2));

  const double w = PI / 4.;
  std::printf("omega = e^(i*pi/4): predicted entry (7,7) = w^(49 mod 8) = "
              "w^1 = (%.4f, %.4f); measured: %s\n",
              std::cos(w), std::sin(w),
              pkg.getMatrixEntry(u1, 7, 7).toString(4).c_str());
  return 0;
}
