// Reproduces paper Fig. 9 / Examples 14-15: the interactive verification
// view. Applies gates from the abstract QFT (left) and the compiled QFT
// (right, inverted) onto an identity DD, printing the node count after
// every step — demonstrating that the diagram "only slightly differs from
// the identity" throughout (Ex. 15).

#include "BenchUtil.hpp"

#include "qdd/ir/Builders.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"
#include "qdd/verify/VerificationSession.hpp"
#include "qdd/viz/TextDump.hpp"

#include <cstdio>

using namespace qdd;

int main() {
  const auto qft = ir::builders::qft(3);
  const auto compiled = ir::decomposeToNativeGates(qft, true);

  bench::heading("Ex. 14: building the QFT functionality in the left box");
  {
    ir::QuantumComputation empty(3);
    Package pkg(3);
    verify::VerificationSession session(qft, empty, pkg);
    while (session.stepLeft()) {
    }
    std::printf("after applying all %zu operations: %zu nodes (the DD of "
                "Fig. 6)\n",
                qft.size(), session.currentNodes());
  }

  bench::heading("Fig. 9 / Ex. 15: stepping both circuits against each "
                 "other");
  Package pkg(3);
  verify::VerificationSession session(qft, compiled, pkg);
  std::printf("identity start: %zu nodes\n", session.currentNodes());
  std::size_t round = 0;
  while (!session.finished()) {
    const bool left = session.stepLeft();
    const std::size_t afterLeft = session.currentNodes();
    const std::size_t applied = session.runRightToBarrier();
    std::printf("round %zu: +1 left gate -> %2zu nodes; +%zu right gates -> "
                "%2zu nodes %s\n",
                ++round, afterLeft, applied, session.currentNodes(),
                session.currentVerdict() == verify::Equivalence::Equivalent
                    ? "(back at the identity)"
                    : "");
    if (!left && applied == 0) {
      break;
    }
  }
  std::printf("\nfinal verdict: %s\n",
              toString(session.currentVerdict()).c_str());
  std::printf("peak nodes during the whole process: %zu (paper Ex. 12: "
              "maximum of 9 nodes, vs 21 for the full system matrix)\n",
              session.peakNodes());

  bench::heading("node history (for the Fig. 9 style size display)");
  std::printf("after each applied gate: ");
  for (const std::size_t nodes : session.nodeHistory()) {
    std::printf("%zu ", nodes);
  }
  std::printf("\n");

  bench::heading("instrumented alternating check (BENCH_PROFILE record)");
  const double profMs = bench::profiledRun("fig9_qft3_alternating", [&] {
    Package p(3);
    const verify::EquivalenceChecker checker(qft, compiled);
    (void)checker.checkAlternating(p);
  });
  std::printf("alternating QFT_3 check with tracing enabled: %.2f ms\n",
              profMs);
  return 0;
}
