// Reproduces paper Fig. 2 / Examples 6-7: the decision diagrams for the
// Bell state (3 nodes, root weight 1/sqrt2, path amplitudes 1/sqrt2), the
// Hadamard gate (1 node), and the controlled-NOT gate (3 nodes with
// 0-stubs), plus the compactness sweep behind Sec. III-A's claim: DD size
// vs dense representation size for structured states.

#include "BenchUtil.hpp"

#include "qdd/dd/Package.hpp"
#include "qdd/viz/TextDump.hpp"

#include <cmath>

using namespace qdd;

int main() {
  Package pkg(2);

  bench::heading("Fig. 2(a): DD of |phi> = (|00> + |11>)/sqrt(2)");
  const vEdge bell = pkg.makeGHZState(2);
  std::printf("%s", viz::asciiDump(viz::buildGraph(bell)).c_str());
  std::printf("nodes: %zu   (paper: 3, terminal not counted)\n",
              Package::size(bell));
  std::printf("root edge weight: %s   (paper: 1/sqrt(2) = 0.7071)\n",
              bell.w.toString(4).c_str());
  std::printf("path amplitudes: <00|phi> = %s, <11|phi> = %s "
              "(paper Ex. 6: 1/sqrt(2) * 1 = 0.7071)\n",
              pkg.getValueByIndex(bell, 0).toString(4).c_str(),
              pkg.getValueByIndex(bell, 3).toString(4).c_str());

  bench::heading("Fig. 2(b): DD of the Hadamard gate");
  const mEdge h = pkg.makeGateDD(H_MAT, 1, 0);
  std::printf("%s", viz::asciiDump(viz::buildGraph(h)).c_str());
  std::printf("nodes: %zu   (paper: 1)\n", Package::size(h));

  bench::heading("Fig. 2(c): DD of the controlled-NOT gate");
  const mEdge cx = pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0);
  std::printf("%s", viz::asciiDump(viz::buildGraph(cx)).c_str());
  std::printf("nodes: %zu   (paper: 3; off-diagonal successors are "
              "0-stubs)\n",
              Package::size(cx));

  bench::heading("Sec. III-A compactness: DD nodes vs dense amplitudes");
  std::printf("%-6s %-14s %-14s %-16s %-16s\n", "n", "GHZ DD nodes",
              "W DD nodes", "basis DD nodes", "dense amplitudes");
  bench::rule();
  Package big(64);
  for (std::size_t n = 2; n <= 64; n *= 2) {
    const vEdge ghz = big.makeGHZState(n);
    const vEdge w = big.makeWState(n);
    const vEdge basis = big.makeZeroState(n);
    std::printf("%-6zu %-14zu %-14zu %-16zu 2^%zu\n", n, Package::size(ghz),
                Package::size(w), Package::size(basis), n);
  }
  std::printf("\nDD growth for GHZ is linear (2n-1), dense is exponential "
              "(2^n) -> \"very compact representations in many cases\"\n");
  return 0;
}
