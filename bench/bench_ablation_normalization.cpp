// Ablation: the normalization scheme (paper Sec. III-A, footnote 3).
// Compares the figures' "divide by largest" scheme against the 2-norm
// scheme of [16] on node counts (identical — both are canonical), runtime,
// and what each buys: direct branch probabilities (Norm) vs exact unit
// weights (Largest).

#include "BenchUtil.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"

#include <cstdio>
#include <random>

using namespace qdd;

namespace {
void runCase(const char* name, const ir::QuantumComputation& qc) {
  const std::size_t n = qc.numQubits();
  std::size_t nodesLargest = 0;
  std::size_t nodesNorm = 0;
  double msLargest = 0.;
  double msNorm = 0.;
  double sampleLargest = 0.;
  double sampleNorm = 0.;
  {
    Package pkg(n, NormalizationScheme::Largest);
    vEdge e;
    msLargest = bench::timeMs(
        [&] { e = bridge::simulate(qc, pkg.makeZeroState(n), pkg); });
    nodesLargest = Package::size(e);
    pkg.incRef(e);
    std::mt19937_64 rng(1);
    sampleLargest = bench::timeMs([&] {
      for (int s = 0; s < 2000; ++s) {
        (void)pkg.sample(e, rng);
      }
    });
  }
  {
    Package pkg(n, NormalizationScheme::Norm);
    vEdge e;
    msNorm = bench::timeMs(
        [&] { e = bridge::simulate(qc, pkg.makeZeroState(n), pkg); });
    nodesNorm = Package::size(e);
    pkg.incRef(e);
    std::mt19937_64 rng(1);
    sampleNorm = bench::timeMs([&] {
      for (int s = 0; s < 2000; ++s) {
        (void)pkg.sample(e, rng);
      }
    });
  }
  std::printf("%-22s %-6zu %-9zu %-9zu %8.2f %8.2f %10.2f %10.2f\n", name, n,
              nodesLargest, nodesNorm, msLargest, msNorm, sampleLargest,
              sampleNorm);
}
} // namespace

int main() {
  bench::heading("normalization-scheme ablation (Largest = paper figures, "
                 "Norm = [16] sampling scheme)");
  std::printf("%-22s %-6s %-9s %-9s %8s %8s %10s %10s\n", "workload", "n",
              "nodes(L)", "nodes(N)", "sim(L)", "sim(N)", "2k smpl(L)",
              "2k smpl(N)");
  bench::rule();
  runCase("ghz", ir::builders::ghz(20));
  runCase("wstate", ir::builders::wState(20));
  runCase("qft", ir::builders::qft(12));
  runCase("grover", ir::builders::grover(10, 100));
  runCase("random", ir::builders::randomCliffordT(10, 200, 4));
  std::printf("\nBoth schemes are canonical and yield identical node "
              "counts; Norm makes |weight|^2 a branch probability "
              "(footnote 3), Largest reproduces the paper's figure "
              "annotations (e.g. the Bell root weight 1/sqrt2).\n");
  return 0;
}
