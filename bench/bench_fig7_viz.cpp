// Reproduces paper Fig. 7: the visualization options for decision diagrams
// — (a) classic mode with annotated/dashed edges and 0-stubs, (b) the HLS
// color wheel encoding complex phases, and (c) label-free colored edges
// with magnitude-based thickness — and times each exporter.

#include "BenchUtil.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/viz/Color.hpp"
#include "qdd/viz/DotExporter.hpp"
#include "qdd/viz/JsonExporter.hpp"
#include "qdd/viz/SvgExporter.hpp"

#include <cmath>

using namespace qdd;

int main() {
  bench::heading("Fig. 7(b): HLS color wheel samples (phase -> color)");
  std::printf("%-12s %-10s\n", "phase", "color");
  bench::rule();
  const char* names[] = {"0",      "pi/4",   "pi/2",  "3pi/4", "pi",
                         "5pi/4",  "3pi/2",  "7pi/4"};
  for (int k = 0; k < 8; ++k) {
    const double phase = PI / 4. * k;
    std::printf("%-12s %-10s\n", names[k],
                viz::phaseToColor(phase).toHex().c_str());
  }

  // a state with weights covering several phases: the QFT applied to |001>
  Package pkg(3);
  const auto qft = ir::builders::qft(3);
  const vEdge state =
      bridge::simulate(qft, pkg.makeBasisState(3, {true, false, false}), pkg);
  const viz::Graph graph = viz::buildGraph(state);

  bench::heading("exporter matrix: style x encoding (QFT_3 |001> state DD)");
  struct Mode {
    const char* name;
    viz::ExportOptions opts;
  };
  const Mode modes[] = {
      {"classic + labels (Fig. 7a)",
       {.style = viz::Style::Classic, .edgeLabels = true}},
      {"classic + colors (Fig. 7c)",
       {.style = viz::Style::Classic,
        .edgeLabels = false,
        .colored = true,
        .magnitudeThickness = true}},
      {"modern + colors",
       {.style = viz::Style::Modern, .edgeLabels = false, .colored = true}},
  };
  std::printf("%-30s %-12s %-12s %-12s\n", "mode", "dot bytes", "svg bytes",
              "time (ms)");
  bench::rule();
  for (const auto& mode : modes) {
    std::string dot;
    std::string svg;
    const double ms = bench::timeMs([&] {
      dot = viz::DotExporter(mode.opts).toDot(graph);
      svg = viz::SvgExporter(mode.opts).toSvg(graph);
    });
    std::printf("%-30s %-12zu %-12zu %-12.3f\n", mode.name, dot.size(),
                svg.size(), ms);
  }

  const std::string json = viz::JsonExporter().toJson(graph);
  std::printf("\nJSON interchange export: %zu bytes (%zu nodes, %zu "
              "edges)\n",
              json.size(), graph.nodes.size(), graph.edges.size());

  bench::heading("export scaling (GHZ states)");
  std::printf("%-6s %-10s %-12s %-12s %-12s\n", "n", "nodes", "dot (ms)",
              "svg (ms)", "json (ms)");
  bench::rule();
  Package big(64);
  for (std::size_t n = 8; n <= 64; n *= 2) {
    const viz::Graph g = viz::buildGraph(big.makeGHZState(n));
    const double dotMs =
        bench::timeMs([&] { (void)viz::DotExporter().toDot(g); });
    const double svgMs =
        bench::timeMs([&] { (void)viz::SvgExporter().toSvg(g); });
    const double jsonMs =
        bench::timeMs([&] { (void)viz::JsonExporter().toJson(g); });
    std::printf("%-6zu %-10zu %-12.3f %-12.3f %-12.3f\n", n, g.nodes.size(),
                dotMs, svgMs, jsonMs);
  }
  return 0;
}
