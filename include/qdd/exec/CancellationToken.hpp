#pragma once

#include <atomic>
#include <memory>

namespace qdd::exec {

/// Copyable cancellation handle shared by everyone cooperating on one piece
/// of work: copies refer to the same flag, `cancel()` is sticky, and
/// observers poll `cancelled()` at natural checkpoints (between gates,
/// between shots, between suite entries). Long-running library routines that
/// must stay ignorant of qdd::exec take the raw `flag()` pointer instead —
/// a `const std::atomic<bool>*` with nullptr meaning "never cancelled" —
/// so verification can honor portfolio cancellation without depending on
/// this subsystem.
class CancellationToken {
public:
  CancellationToken() : state(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Sticky: there is no way to un-cancel.
  void cancel() const noexcept {
    state->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return state->load(std::memory_order_relaxed);
  }

  /// The shared flag, for APIs that accept `const std::atomic<bool>*`.
  /// Valid as long as any copy of this token is alive.
  [[nodiscard]] const std::atomic<bool>* flag() const noexcept {
    return state.get();
  }

private:
  std::shared_ptr<std::atomic<bool>> state;
};

} // namespace qdd::exec
