#pragma once

#include "qdd/exec/CancellationToken.hpp"
#include "qdd/ir/QuantumComputation.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <string>
#include <vector>

namespace qdd::exec {

/// Options of the portfolio equivalence checker.
struct PortfolioOptions {
  /// Worker threads; 0 uses one worker per portfolio entry.
  std::size_t workers = 0;
  /// Alternating strategy used by both directional entries.
  verify::Strategy strategy = verify::Strategy::Proportional;
  /// Numerical tolerance handed to the checkers.
  double tolerance = 1e-9;
  /// Adds a simulation-based prover to the portfolio. It can only ever
  /// conclude *non*-equivalence (its "probably equivalent" is not
  /// conclusive), but it often proves inequivalence long before either
  /// alternating direction terminates.
  bool includeSimulation = true;
  std::size_t simulationStimuli = 8;
  /// Seed of the simulation prover's stimuli.
  std::uint64_t seed = 0;
  /// Cancellation token shared by every entry: the first entry to reach a
  /// conclusive verdict cancels it, stopping the losers at their next gate
  /// boundary. A caller holding a copy can cancel the whole portfolio the
  /// same way at any time.
  CancellationToken cancel{};
};

/// Result of a portfolio run: the verdict of the first entry to reach a
/// conclusive result, plus per-entry reporting.
struct PortfolioResult {
  verify::CheckResult result; ///< the winning entry's result
  std::string winner;         ///< name of the winning entry
  /// Every entry that was raced, in launch order.
  struct Entry {
    std::string name;
    verify::CheckResult result; ///< partial if the entry was cancelled
    double wallMs = 0.;
    bool conclusive = false;
  };
  std::vector<Entry> entries;
  double wallMs = 0.;
  /// True when the caller's token cancelled the whole portfolio before any
  /// entry concluded.
  bool cancelled = false;
};

/// Races complementary equivalence-checking configurations on the same
/// circuit pair — the alternating scheme applying G1 from the left and
/// G2^{-1} from the right, the mirrored direction (which often behaves very
/// differently: whichever circuit is "more compiled" benefits from being
/// consumed barrier-synchronously), and optionally a simulation prover —
/// each on its own private dd::Package, with a shared cancellation flag
/// stopping the losers as soon as one entry is conclusive.
///
/// The verdict always agrees with the serial checker: every conclusive
/// entry computes the same equivalence relation, only the route differs.
PortfolioResult checkPortfolio(const ir::QuantumComputation& g1,
                               const ir::QuantumComputation& g2,
                               const PortfolioOptions& options = {});

} // namespace qdd::exec
