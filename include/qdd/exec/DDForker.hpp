#pragma once

// Production TaskForker: bridges a concurrent dd::Package to the exec
// ThreadPool. The dd layer only knows the abstract qdd::TaskForker
// interface (include/qdd/dd/TaskForker.hpp); this header supplies the
// pool-backed implementation plus the process-wide shared pool that
// QDD_APPLY=parallel sessions fork onto (docs/PARALLELISM.md,
// "Intra-circuit parallelism").

#include "qdd/dd/Package.hpp"
#include "qdd/dd/TaskForker.hpp"
#include "qdd/exec/ThreadPool.hpp"

#include <atomic>
#include <cstddef>

namespace qdd::exec {

/// Forks DD subproblems onto a ThreadPool and joins help-first: `runAll`
/// enqueues every task into a fresh TaskGroup and then runs queued pool
/// work itself until the group drains (ThreadPool::waitAndWork), so nested
/// forks cannot deadlock even on a 1-worker pool. Reentrant by
/// construction — each runAll owns its group, and forked tasks calling
/// runAll again simply open another group on the same pool.
///
/// Cancellation follows the CancellationToken idiom: an optional external
/// `std::atomic<bool>` flag, nullptr meaning "never cancelled". The DD
/// package polls `cancelled()` at every fork point and unwinds with
/// OperationCancelled when the flag flips.
class PoolForker final : public TaskForker {
public:
  explicit PoolForker(ThreadPool& threadPool,
                      const std::atomic<bool>* cancelFlag = nullptr) noexcept
      : pool(&threadPool), cancel(cancelFlag) {}

  void runAll(std::function<void()>* tasks, std::size_t n) override {
    TaskGroup group;
    for (std::size_t k = 0; k < n; ++k) {
      pool->fork(group, std::move(tasks[k]));
    }
    pool->waitAndWork(group);
  }

  [[nodiscard]] bool cancelled() const noexcept override {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// Installs (or clears, with nullptr) the cancellation flag. Matches
  /// exec::CancellationToken::flag().
  void setCancelFlag(const std::atomic<bool>* flag) noexcept { cancel = flag; }

  [[nodiscard]] ThreadPool& threadPool() const noexcept { return *pool; }

private:
  ThreadPool* pool;
  const std::atomic<bool>* cancel;
};

/// Process-wide pool for intra-circuit DD parallelism, created on first use
/// with `QDD_WORKERS` workers (ThreadPool::defaultWorkers() when unset) and
/// intentionally leaked — DD operations may still be forking during static
/// destruction of other objects.
ThreadPool& sharedPool();

/// Attaches a shared-pool PoolForker to `pkg` if (and only if) the package
/// was built concurrent and has no forker yet; serial packages are left
/// untouched, so callers can apply this unconditionally after construction.
/// Fork depth comes from `QDD_FORK_DEPTH` (default
/// Package::DEFAULT_FORK_DEPTH). Returns whether a forker was attached.
bool attachSharedForker(Package& pkg);

} // namespace qdd::exec
