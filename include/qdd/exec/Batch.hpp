#pragma once

#include "qdd/exec/CancellationToken.hpp"
#include "qdd/ir/QuantumComputation.hpp"
#include "qdd/mem/StatsRegistry.hpp"
#include "qdd/sim/SimulationSession.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace qdd::exec {

/// Options shared by the batch entry points.
struct BatchOptions {
  /// Worker threads; 0 picks ThreadPool::defaultWorkers().
  std::size_t workers = 0;
  /// User seed. Task i derives its RNG stream as taskSeed(seed, i), so
  /// results are bit-identical for every worker count and schedule.
  std::uint64_t seed = 0;
  /// Measurement shots sampled per circuit; 0 simulates without sampling.
  std::size_t shots = 0;
  /// Cooperative cancellation: tasks not yet started when the token fires
  /// are skipped (marked `cancelled`); running tasks finish their circuit.
  CancellationToken cancel{};
};

/// Deterministic per-task RNG seed: a splitmix64 finalization of the user
/// seed XOR a task-index-dependent odd constant. Every task gets a
/// decorrelated stream (including task 0 with user seed 0), and the stream
/// depends only on (seed, index) — never on scheduling.
[[nodiscard]] std::uint64_t taskSeed(std::uint64_t seed,
                                     std::uint64_t taskIndex) noexcept;

/// Outcome of one batch entry.
struct CircuitResult {
  std::string name;
  std::size_t qubits = 0;
  std::size_t operations = 0;
  std::size_t finalNodes = 0;
  std::size_t peakNodes = 0;
  /// Bitstring counts when BatchOptions::shots > 0 (empty otherwise).
  sim::SamplingResult sampling;
  double wallMs = 0.;
  /// Worker that executed the task — informational only; results are
  /// independent of it by construction.
  std::size_t worker = 0;
  bool cancelled = false;
  /// Non-empty if the task failed (parse error, unsupported circuit, ...).
  /// Failures are per-entry: the rest of the batch still runs.
  std::string error;

  [[nodiscard]] bool ok() const noexcept {
    return error.empty() && !cancelled;
  }
};

/// Aggregated outcome of a batch run.
struct BatchResult {
  /// Index-aligned with the input circuit/file list.
  std::vector<CircuitResult> circuits;
  /// Per-worker package statistics merged into one registry. Counter totals
  /// depend on how tasks were distributed (packages warm across the tasks
  /// that share a worker); the per-circuit *results* above do not.
  mem::StatsRegistry stats;
  std::size_t workers = 0;
  double wallMs = 0.;

  [[nodiscard]] std::size_t failures() const noexcept {
    std::size_t n = 0;
    for (const auto& c : circuits) {
      if (!c.error.empty()) {
        ++n;
      }
    }
    return n;
  }
};

/// Simulates `circuits` across a work-stealing pool of workers, each owning
/// a private dd::Package (no DD-internal locking; see docs/PARALLELISM.md).
/// Per-circuit results are bit-identical for every worker count: task i
/// always simulates with RNG seed taskSeed(options.seed, i), and DD node
/// counts are canonical. With options.shots > 0 each circuit is additionally
/// sampled (weak simulation where the circuit allows it).
BatchResult simulateBatch(const std::vector<ir::QuantumComputation>& circuits,
                          const BatchOptions& options = {});

/// Samples `shots` measurement outcomes of one circuit, with the shot
/// budget split into fixed-size chunks executed across the pool. Chunking
/// and per-chunk seeds depend only on (shots, seed), so the merged counts
/// are bit-identical for every worker count.
sim::SamplingResult sampleParallel(const ir::QuantumComputation& qc,
                                   std::size_t shots,
                                   const BatchOptions& options = {});

/// Lists the .qasm / .real circuit files directly inside `directory`,
/// sorted by name (the deterministic task order of runSuite). Throws
/// std::runtime_error if the directory cannot be read.
[[nodiscard]] std::vector<std::string>
collectCircuitFiles(const std::string& directory);

/// Parses and simulates every file across the pool — the engine behind
/// `qdd-tool batch <dir>`. Parse and simulation errors are captured in the
/// corresponding CircuitResult::error instead of aborting the batch.
BatchResult runSuite(const std::vector<std::string>& files,
                     const BatchOptions& options = {});

} // namespace qdd::exec
