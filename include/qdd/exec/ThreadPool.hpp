#pragma once

// qdd::exec — task-level and fork/join parallelism for the DD engine.
//
// Two modes of use:
//  * Task level (`parallelFor`/`submit`): every worker owns its own
//    dd::Package, tasks are whole circuits / shot chunks / verification
//    directions, and nothing inside the DD engine is shared.
//  * Fork/join (`fork`/`waitAndWork` on a TaskGroup): a single concurrent
//    dd::Package (sharded unique tables, striped compute caches, CAS real
//    table — see docs/PARALLELISM.md) forks independent DD subproblems onto
//    the same pool and joins them. Joins are *help-first*: a thread waiting
//    on a group runs queued tasks instead of blocking, so fork/join nesting
//    is safe even on a 1-worker pool and pool tasks may themselves fork.

#include "qdd/obs/TraceContext.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qdd::exec {

class ThreadPool;

/// Join handle for a set of forked tasks (see ThreadPool::fork). One group
/// tracks any number of tasks; `waitAndWork` blocks (helping) until all of
/// them have completed and rethrows the first exception any of them threw.
/// A group may be reused for a new fork round after a successful wait, but
/// must never be destroyed with tasks still pending (waitAndWork's
/// postcondition guarantees none are).
class TaskGroup {
public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Number of forked-but-uncompleted tasks (racy snapshot).
  [[nodiscard]] std::size_t pendingCount() const noexcept {
    return pending.load(std::memory_order_acquire);
  }

private:
  friend class ThreadPool;
  std::atomic<std::size_t> pending{0};
  std::mutex errorMutex;
  std::exception_ptr error;
};

/// Work-stealing thread pool. Tasks of a batch are dealt round-robin onto
/// per-worker deques; each worker pops its own deque LIFO and, when empty,
/// steals FIFO from its siblings — so a worker stuck behind one long task
/// (a deep circuit amid shallow ones) has its backlog drained by the others.
///
/// The pool runs one batch at a time (`parallelFor` serializes callers);
/// workers are started once in the constructor and parked on a condition
/// variable between batches.
///
/// Besides batches, the pool accepts *detached* tasks via `submit()`: fire-
/// and-forget closures dealt round-robin onto the same deques (and stolen
/// like any other task). They have no completion handle — callers needing
/// one track it themselves (the qdd::service HTTP server counts in-flight
/// connections this way). Detached tasks still queued when the destructor
/// runs are executed before the workers exit.
class ThreadPool {
public:
  /// Creates `workers` worker threads; 0 picks `defaultWorkers()`.
  explicit ThreadPool(std::size_t workers = 0);
  /// Joins all workers. Pending batches finish first (the destructor can
  /// only run once no parallelFor is active, and parallelFor is blocking).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workerCount() const noexcept {
    return queues.size();
  }

  /// `std::thread::hardware_concurrency()`, clamped to at least 1.
  [[nodiscard]] static std::size_t defaultWorkers();

  /// Runs `body(taskIndex, workerId)` for every taskIndex in [0, numTasks)
  /// and blocks until all have completed. Task distribution (taskIndex ->
  /// initial queue) is deterministic; execution order and the final
  /// task -> worker assignment are not (that is the point of stealing), so
  /// bodies must derive any reproducible state (RNG seeds!) from taskIndex,
  /// never from workerId or arrival order. workerId < workerCount() and is
  /// stable for the duration of one body invocation — it indexes per-worker
  /// resources such as the DD packages of exec::simulateBatch.
  ///
  /// If bodies throw, the batch still runs to completion and the first
  /// exception (by completion order) is rethrown here.
  void parallelFor(std::size_t numTasks,
                   const std::function<void(std::size_t, std::size_t)>& body);

  /// Enqueues one detached task (round-robin across the worker deques). The
  /// task runs exactly once on some worker; exceptions escaping it are
  /// swallowed and counted in Stats::detachedErrors — detached work is
  /// expected to handle its own failures. Safe to call concurrently with
  /// parallelFor and with other submit calls.
  void submit(std::function<void()> task);

  /// Enqueues one task belonging to `group` (round-robin across the worker
  /// deques, stolen like any other task). The caller joins with
  /// `waitAndWork(group)`. The submitter's TraceContext is captured and
  /// installed around execution, exactly as for detached tasks, so spans
  /// from forked DD subproblems stay attributed to the request that forked
  /// them. Safe to call from pool workers (that is the point: recursive DD
  /// operations fork subproblems from inside pool tasks).
  void fork(TaskGroup& group, std::function<void()> task);

  /// Blocks until every task forked into `group` has completed — but
  /// *helps* instead of parking: while the group is pending, the calling
  /// thread runs queued pool tasks (its own deque first if it is a pool
  /// worker, otherwise scanning all deques). This makes nested fork/join
  /// deadlock-free: a pool task waiting on subtasks executes them itself if
  /// no sibling picks them up, even on a 1-worker pool. Rethrows the first
  /// exception thrown by a group task (after all tasks completed).
  void waitAndWork(TaskGroup& group);

  /// Runs one queued task on the calling thread if any is available.
  /// Pool workers take from their own deque first, then steal; external
  /// threads scan all deques but skip parallelFor batch tasks (batch bodies
  /// receive a workerId that must index per-worker resources). Returns
  /// whether a task was run.
  bool tryRunOneTask();

  /// Scheduling counters (cumulative over the pool's lifetime).
  struct Stats {
    std::vector<std::size_t> executedPerWorker;
    std::size_t steals = 0;         ///< tasks taken from a sibling's deque
    std::size_t detachedErrors = 0; ///< exceptions escaping detached tasks
    std::size_t forked = 0;         ///< tasks enqueued via fork()
    std::size_t helpedExternal = 0; ///< tasks run by non-worker helpers
  };
  [[nodiscard]] Stats stats() const;

private:
  struct Batch {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> remaining{0};
    std::mutex errorMutex;
    std::exception_ptr error;
    std::mutex doneMutex;
    std::condition_variable doneCv;
  };

  /// One queued unit of work: task `index` of `batch` (whose owner keeps
  /// the Batch alive until every task completed); or — with `batch ==
  /// nullptr` — the closure `fn`, either detached (`group == nullptr`) or
  /// belonging to a TaskGroup the forker joins on. `trace` is the
  /// submitter's TraceContext, captured at enqueue time and installed
  /// around the task's execution, so spans recorded by pool work stay
  /// attributed to the request that fanned it out (and an invalid context
  /// *clears* the worker's slot, so no task ever inherits identity from
  /// whatever ran on the worker before).
  struct Item {
    Batch* batch = nullptr;
    std::size_t index = 0;
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    obs::TraceContext trace;
  };

  /// One worker's deque. A plain mutex-guarded deque: tasks here are whole
  /// circuits / connections (micro- to milliseconds), so queue overhead is
  /// noise and the simple design is trivially race-free.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Item> tasks;
    std::atomic<std::size_t> executed{0};
  };

  /// Sentinel worker index for threads that are not pool workers (helpers
  /// inside waitAndWork). Their executed count lands in helpedExternal.
  static constexpr std::size_t EXTERNAL_THREAD = ~std::size_t{0};

  void workerLoop(std::size_t id);
  bool popLocal(std::size_t id, Item& item);
  bool stealTask(std::size_t thief, Item& item);
  bool takeExternal(Item& item);
  void runTask(Item&& item, std::size_t worker);
  void enqueue(Item&& item);

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> threads;

  std::mutex batchMutex; ///< serializes parallelFor callers

  std::mutex wakeMutex;
  std::condition_variable wakeCv;
  std::atomic<std::size_t> queued{0}; ///< tasks enqueued and not yet popped
  std::atomic<bool> stopping{false};
  std::atomic<std::size_t> stealCount{0};
  std::atomic<std::size_t> submitCursor{0}; ///< round-robin deal of submits
  std::atomic<std::size_t> detachedErrorCount{0};
  std::atomic<std::size_t> forkCount{0};
  std::atomic<std::size_t> externalHelped{0};
};

} // namespace qdd::exec
