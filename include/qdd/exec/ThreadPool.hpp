#pragma once

// qdd::exec — task-level parallelism for the DD engine.
//
// The DD package is inherently sequential: unique tables, compute caches,
// and the complex table are all unsynchronized by design (adding locks to
// the node-creation hot path would cost more than it buys, see
// docs/PARALLELISM.md). Parallelism therefore happens at the *task* level:
// every worker thread owns its own dd::Package, tasks are whole circuits /
// shot chunks / verification directions, and nothing inside the DD engine
// is ever shared between threads.

#include "qdd/obs/TraceContext.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qdd::exec {

/// Work-stealing thread pool. Tasks of a batch are dealt round-robin onto
/// per-worker deques; each worker pops its own deque LIFO and, when empty,
/// steals FIFO from its siblings — so a worker stuck behind one long task
/// (a deep circuit amid shallow ones) has its backlog drained by the others.
///
/// The pool runs one batch at a time (`parallelFor` serializes callers);
/// workers are started once in the constructor and parked on a condition
/// variable between batches.
///
/// Besides batches, the pool accepts *detached* tasks via `submit()`: fire-
/// and-forget closures dealt round-robin onto the same deques (and stolen
/// like any other task). They have no completion handle — callers needing
/// one track it themselves (the qdd::service HTTP server counts in-flight
/// connections this way). Detached tasks still queued when the destructor
/// runs are executed before the workers exit.
class ThreadPool {
public:
  /// Creates `workers` worker threads; 0 picks `defaultWorkers()`.
  explicit ThreadPool(std::size_t workers = 0);
  /// Joins all workers. Pending batches finish first (the destructor can
  /// only run once no parallelFor is active, and parallelFor is blocking).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workerCount() const noexcept {
    return queues.size();
  }

  /// `std::thread::hardware_concurrency()`, clamped to at least 1.
  [[nodiscard]] static std::size_t defaultWorkers();

  /// Runs `body(taskIndex, workerId)` for every taskIndex in [0, numTasks)
  /// and blocks until all have completed. Task distribution (taskIndex ->
  /// initial queue) is deterministic; execution order and the final
  /// task -> worker assignment are not (that is the point of stealing), so
  /// bodies must derive any reproducible state (RNG seeds!) from taskIndex,
  /// never from workerId or arrival order. workerId < workerCount() and is
  /// stable for the duration of one body invocation — it indexes per-worker
  /// resources such as the DD packages of exec::simulateBatch.
  ///
  /// If bodies throw, the batch still runs to completion and the first
  /// exception (by completion order) is rethrown here.
  void parallelFor(std::size_t numTasks,
                   const std::function<void(std::size_t, std::size_t)>& body);

  /// Enqueues one detached task (round-robin across the worker deques). The
  /// task runs exactly once on some worker; exceptions escaping it are
  /// swallowed and counted in Stats::detachedErrors — detached work is
  /// expected to handle its own failures. Safe to call concurrently with
  /// parallelFor and with other submit calls.
  void submit(std::function<void()> task);

  /// Scheduling counters (cumulative over the pool's lifetime).
  struct Stats {
    std::vector<std::size_t> executedPerWorker;
    std::size_t steals = 0;         ///< tasks taken from a sibling's deque
    std::size_t detachedErrors = 0; ///< exceptions escaping detached tasks
  };
  [[nodiscard]] Stats stats() const;

private:
  struct Batch {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> remaining{0};
    std::mutex errorMutex;
    std::exception_ptr error;
    std::mutex doneMutex;
    std::condition_variable doneCv;
  };

  /// One queued unit of work: either task `index` of `batch` (whose owner
  /// keeps the Batch alive until every task completed), or — with `batch ==
  /// nullptr` — a detached closure. `trace` is the submitter's TraceContext,
  /// captured at enqueue time and installed around the task's execution, so
  /// spans recorded by pool work stay attributed to the request that fanned
  /// it out (and an invalid context *clears* the worker's slot, so no task
  /// ever inherits identity from whatever ran on the worker before).
  struct Item {
    Batch* batch = nullptr;
    std::size_t index = 0;
    std::function<void()> detached;
    obs::TraceContext trace;
  };

  /// One worker's deque. A plain mutex-guarded deque: tasks here are whole
  /// circuits / connections (micro- to milliseconds), so queue overhead is
  /// noise and the simple design is trivially race-free.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Item> tasks;
    std::atomic<std::size_t> executed{0};
  };

  void workerLoop(std::size_t id);
  bool popLocal(std::size_t id, Item& item);
  bool stealTask(std::size_t thief, Item& item);
  void runTask(Item&& item, std::size_t worker);

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> threads;

  std::mutex batchMutex; ///< serializes parallelFor callers

  std::mutex wakeMutex;
  std::condition_variable wakeCv;
  std::atomic<std::size_t> queued{0}; ///< tasks enqueued and not yet popped
  std::atomic<bool> stopping{false};
  std::atomic<std::size_t> stealCount{0};
  std::atomic<std::size_t> submitCursor{0}; ///< round-robin deal of submits
  std::atomic<std::size_t> detachedErrorCount{0};
};

} // namespace qdd::exec
