#pragma once

#include "qdd/ir/QuantumComputation.hpp"
#include "qdd/parser/qasm/Lexer.hpp"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qdd::qasm {

/// Parses OpenQASM 2.0 source (the `.qasm` format accepted by the tool's
/// algorithm boxes, Sec. IV-B) into a QuantumComputation.
///
/// Supported: qreg/creg, the builtin U/CX, the qelib1.inc standard gates
/// (always available), user `gate` definitions (expanded into labelled
/// compound operations), register broadcasting, measure/reset/barrier, and
/// classically controlled operations `if (c == v) ...`.
ir::QuantumComputation parse(const std::string& source,
                             const std::string& name = "");

/// Reads and parses a `.qasm` file.
ir::QuantumComputation parseFile(const std::string& path);

namespace detail {

/// Arithmetic expression tree for gate parameters.
struct Expr {
  enum class Kind : std::uint8_t {
    Number,
    Pi,
    Param,
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Neg,
    Sin,
    Cos,
    Tan,
    Exp,
    Ln,
    Sqrt,
  };
  Kind kind = Kind::Number;
  double number = 0.;
  std::string param;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
};
using ExprPtr = std::unique_ptr<Expr>;

double evaluate(const Expr& e, const std::map<std::string, double>& env,
                std::size_t line, std::size_t col);

/// Recursive-descent parser over the token stream.
class Parser {
public:
  explicit Parser(std::string source, std::string name);
  ir::QuantumComputation parse();

private:
  // --- grammar productions ------------------------------------------------
  void parseHeader();
  void parseStatement();
  void parseQreg();
  void parseCreg();
  void parseGateDecl(bool opaque);
  void parseInclude();
  void parseMeasure();
  void parseReset();
  void parseBarrier();
  void parseIf();
  void parseGateCall();

  // --- gate application ----------------------------------------------------
  struct Operand {
    std::string reg;
    bool indexed = false;
    std::size_t index = 0;
    std::size_t line = 1;
    std::size_t col = 1;
  };
  struct GateCall {
    std::string name;
    std::vector<ExprPtr> params;
    std::vector<Operand> operands; ///< operand.reg holds formal names in decls
    /// additional leading control operands from the `c(N) gate ...` prefix
    std::size_t extraControls = 0;
    std::size_t line = 1;
    std::size_t col = 1;
  };
  struct GateDecl {
    std::vector<std::string> paramNames;
    std::vector<std::string> argNames;
    std::vector<GateCall> body;
    bool opaque = false;
  };

  GateCall parseCallTail(std::string gateName, bool inGateBody);
  Operand parseOperand(bool inGateBody);
  ExprPtr parseExpr();
  ExprPtr parseAddSub();
  ExprPtr parseMulDiv();
  ExprPtr parsePow();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  /// Resolves register operands to flat indices with broadcasting and emits
  /// the call into the circuit (possibly wrapped by `wrap`).
  void emitCall(const GateCall& call,
                const std::function<void(std::unique_ptr<ir::Operation>)>&
                    sink);
  /// Expands a single (non-broadcast) call into operations.
  void expandCall(const GateCall& call, const std::vector<Qubit>& qubits,
                  const std::map<std::string, double>& env,
                  const std::function<void(std::unique_ptr<ir::Operation>)>&
                      sink);
  bool tryBuiltin(const std::string& name, const std::vector<double>& params,
                  const std::vector<Qubit>& qubits, std::size_t extraControls,
                  std::size_t line, std::size_t col,
                  const std::function<void(std::unique_ptr<ir::Operation>)>&
                      sink);

  std::vector<Qubit> resolveQubit(const Operand& op) const;
  std::vector<std::size_t> resolveClbit(const Operand& op) const;

  // --- token handling ---------------------------------------------------------
  void advanceToken();
  Token expect(TokenKind k, const std::string& context);
  [[nodiscard]] bool check(TokenKind k) const { return cur.kind == k; }
  bool accept(TokenKind k);
  [[noreturn]] void fail(const std::string& message) const;

  Lexer lexer;
  Token cur;
  ir::QuantumComputation qc;
  std::map<std::string, GateDecl> gateDecls;
};

} // namespace detail
} // namespace qdd::qasm
