#pragma once

#include <cstdint>
#include <string>

namespace qdd::qasm {

/// Token kinds of the OpenQASM 2.0 grammar subset supported by the parser.
enum class TokenKind : std::uint8_t {
  EndOfFile,
  // literals and names
  Identifier,
  Real,
  Integer,
  StringLiteral,
  // keywords
  KwOpenqasm,
  KwInclude,
  KwQreg,
  KwCreg,
  KwGate,
  KwOpaque,
  KwMeasure,
  KwReset,
  KwBarrier,
  KwIf,
  KwPi,
  KwU, // builtin U
  KwCX, // builtin CX
  // punctuation
  Semicolon,
  Comma,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Arrow,  // ->
  Equals, // ==
  Plus,
  Minus,
  Star,
  Slash,
  Caret,
};

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;    ///< identifier/string spelling
  double realValue = 0.;
  std::uint64_t intValue = 0;
  std::size_t line = 1;
  std::size_t col = 1;
};

/// Human-readable token-kind name for diagnostics.
std::string toString(TokenKind k);

} // namespace qdd::qasm
