#pragma once

#include "qdd/parser/qasm/Token.hpp"

#include <stdexcept>
#include <string>

namespace qdd::qasm {

/// Error raised on malformed input, carrying source position.
class ParseError : public std::runtime_error {
public:
  ParseError(const std::string& message, std::size_t line, std::size_t col)
      : std::runtime_error("qasm:" + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + message),
        errorLine(line), errorCol(col) {}

  [[nodiscard]] std::size_t line() const noexcept { return errorLine; }
  [[nodiscard]] std::size_t col() const noexcept { return errorCol; }

private:
  std::size_t errorLine;
  std::size_t errorCol;
};

/// Hand-written lexer for OpenQASM 2.0 (handles // comments, numbers,
/// identifiers, keywords, and the punctuation of the grammar).
class Lexer {
public:
  explicit Lexer(std::string source);

  /// Scans and returns the next token.
  Token next();

private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  void skipWhitespaceAndComments();
  Token makeToken(TokenKind k) const;
  Token lexNumber();
  Token lexIdentifierOrKeyword();
  Token lexString();

  std::string src;
  std::size_t pos = 0;
  std::size_t line = 1;
  std::size_t col = 1;
  std::size_t tokLine = 1;
  std::size_t tokCol = 1;
};

} // namespace qdd::qasm
