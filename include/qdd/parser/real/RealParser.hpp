#pragma once

#include "qdd/ir/QuantumComputation.hpp"

#include <string>

namespace qdd::real {

/// Parses a RevLib `.real` reversible-circuit description (the second file
/// format accepted by the tool's algorithm boxes, Sec. IV-B).
///
/// Supported directives: .version, .numvars, .variables, .inputs, .outputs,
/// .constants, .garbage, .begin/.end; supported gates: tN (multi-controlled
/// Toffoli; t1 = NOT, t2 = CNOT), fN (multi-controlled Fredkin/SWAP), v/v+
/// (controlled square root of NOT). Negative controls are written with a
/// leading '-'.
///
/// The first declared variable is mapped to the most-significant qubit
/// q_{n-1} (matching the top circuit line, paper Sec. II conventions).
ir::QuantumComputation parse(const std::string& source,
                             const std::string& name = "");

/// Reads and parses a `.real` file.
ir::QuantumComputation parseFile(const std::string& path);

} // namespace qdd::real
