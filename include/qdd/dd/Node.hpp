#pragma once

#include "qdd/common/Definitions.hpp"
#include "qdd/complex/Complex.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace qdd {

template <class Node> struct Edge {
  Node* p = nullptr;
  Complex w = Complex::zero;

  [[nodiscard]] bool isTerminal() const noexcept {
    return p == Node::terminal();
  }
  [[nodiscard]] bool isZeroTerminal() const noexcept {
    return isTerminal() && w.exactlyZero();
  }
  /// The canonical all-zero edge (0-stub).
  [[nodiscard]] static Edge zero() noexcept {
    return {Node::terminal(), Complex::zero};
  }
  /// Terminal edge with weight one.
  [[nodiscard]] static Edge one() noexcept {
    return {Node::terminal(), Complex::one};
  }
  [[nodiscard]] static Edge terminal(const Complex& weight) noexcept {
    return {Node::terminal(), weight};
  }

  friend bool operator==(const Edge& a, const Edge& b) noexcept {
    return a.p == b.p && a.w == b.w;
  }
};

/// Reference counts are 16-bit and saturate: once a node reaches this value
/// it is pinned forever (inc/dec become no-ops and GC never reclaims it).
/// Real workloads essentially never push a single node past 65534 concurrent
/// parents, and the nodes that do (deep identity spines, pinned roots) are
/// precisely the ones worth keeping alive for the package's lifetime.
inline constexpr std::uint16_t IMMORTAL_REF = 0xFFFFU;

/// Decision-diagram node for state vectors: two successors, one per basis
/// value of the qubit at this level (paper Sec. III-A).
///
/// The layout is packed into exactly one 64-byte cache line so the
/// `add`/`multiply2` recursions touch a single line per node: 2x24-byte
/// edges, the allocator free-list pointer (dead while the node is live),
/// and the narrow bookkeeping fields fill the line with no padding. The
/// allocator hands nodes out 64-byte aligned (`alignas` + C++17 aligned
/// `new[]`), so an edge dereference never straddles lines.
struct alignas(64) vNode {
  std::array<Edge<vNode>, 2> e{}; ///< successors          (48 bytes)
  vNode* next = nullptr;          ///< allocator free list  (8 bytes)
  std::uint32_t gen = 0;          ///< allocation generation (4 bytes)
  std::uint16_t ref = 0;          ///< parents + user roots, saturating
  Qubit v = TERMINAL_LEVEL;       ///< qubit/level of this node

  static vNode* terminal() noexcept { return &terminalNode; }
  [[nodiscard]] bool isTerminal() const noexcept {
    return this == &terminalNode;
  }

private:
  static vNode terminalNode;
};

static_assert(sizeof(vNode) == 64, "vNode must fill one cache line");
static_assert(alignof(vNode) == 64, "vNode must be cache-line aligned");

/// Decision-diagram node for operation matrices: four successors, one per
/// (row, column) block U_ij of the matrix at this level (paper Sec. III-A).
/// Successor order is [U00, U01, U10, U11].
///
/// Packed into exactly two cache lines (4x24-byte edges + bookkeeping =
/// 112 bytes, padded to 128): the first line holds e[0..2], the second
/// e[3] plus the narrow fields, and the 64-byte alignment guarantees the
/// split always falls on the same edge boundary.
struct alignas(64) mNode {
  std::array<Edge<mNode>, 4> e{}; ///< successors          (96 bytes)
  mNode* next = nullptr;          ///< allocator free list  (8 bytes)
  std::uint32_t gen = 0;          ///< allocation generation (4 bytes)
  std::uint16_t ref = 0;          ///< parents + user roots, saturating
  Qubit v = TERMINAL_LEVEL;       ///< qubit/level of this node

  static mNode* terminal() noexcept { return &terminalNode; }
  [[nodiscard]] bool isTerminal() const noexcept {
    return this == &terminalNode;
  }

private:
  static mNode terminalNode;
};

static_assert(sizeof(mNode) == 128, "mNode must fill two cache lines");
static_assert(alignof(mNode) == 64, "mNode must be cache-line aligned");

using vEdge = Edge<vNode>;
using mEdge = Edge<mNode>;

/// Number of successors of a node of the given type.
template <class Node> inline constexpr std::size_t RADIX = 0;
template <> inline constexpr std::size_t RADIX<vNode> = 2;
template <> inline constexpr std::size_t RADIX<mNode> = 4;

namespace detail {
inline std::size_t combineHash(std::size_t seed, std::size_t h) noexcept {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6U) + (seed >> 2U));
}
inline std::size_t ptrHash(const void* p) noexcept {
  // Pointers are at least 8-byte aligned; discard the dead bits.
  return reinterpret_cast<std::uintptr_t>(p) >> 3U;
}
/// Folds a full hash into the 32-bit fingerprint stored in table slots:
/// mixing in the high half keeps the fingerprint discriminating even though
/// slot indexing already consumed the low bits.
inline std::uint32_t fold32(std::size_t h) noexcept {
  return static_cast<std::uint32_t>(h ^ (h >> 32U));
}
} // namespace detail

/// Structural hash of a node's children (successor pointers and canonical
/// weight pointers). Because weights are table-canonical, equal sub-DDs
/// always hash equally.
template <class Node> std::size_t hashNode(const Node& n) noexcept {
  std::size_t h = 0;
  for (const auto& edge : n.e) {
    h = detail::combineHash(h, detail::ptrHash(edge.p));
    h = detail::combineHash(h, detail::ptrHash(edge.w.r));
    h = detail::combineHash(h, detail::ptrHash(edge.w.i));
  }
  return h;
}

template <class Node>
bool nodesStructurallyEqual(const Node& a, const Node& b) noexcept {
  for (std::size_t k = 0; k < RADIX<Node>; ++k) {
    if (!(a.e[k] == b.e[k])) {
      return false;
    }
  }
  return true;
}

} // namespace qdd
