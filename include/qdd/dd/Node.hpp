#pragma once

#include "qdd/common/Definitions.hpp"
#include "qdd/complex/Complex.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace qdd {

template <class Node> struct Edge {
  Node* p = nullptr;
  Complex w = Complex::zero;

  [[nodiscard]] bool isTerminal() const noexcept {
    return p == Node::terminal();
  }
  [[nodiscard]] bool isZeroTerminal() const noexcept {
    return isTerminal() && w.exactlyZero();
  }
  /// The canonical all-zero edge (0-stub).
  [[nodiscard]] static Edge zero() noexcept {
    return {Node::terminal(), Complex::zero};
  }
  /// Terminal edge with weight one.
  [[nodiscard]] static Edge one() noexcept {
    return {Node::terminal(), Complex::one};
  }
  [[nodiscard]] static Edge terminal(const Complex& weight) noexcept {
    return {Node::terminal(), weight};
  }

  friend bool operator==(const Edge& a, const Edge& b) noexcept {
    return a.p == b.p && a.w == b.w;
  }
};

/// Decision-diagram node for state vectors: two successors, one per basis
/// value of the qubit at this level (paper Sec. III-A).
struct vNode {
  std::array<Edge<vNode>, 2> e{};
  vNode* next = nullptr;     ///< unique-table bucket chain
  std::uint32_t ref = 0;     ///< incoming references (parents + user roots)
  std::uint32_t gen = 0;     ///< allocation generation (mem::MemoryManager)
  Qubit v = TERMINAL_LEVEL;  ///< qubit/level of this node

  static vNode* terminal() noexcept { return &terminalNode; }
  [[nodiscard]] bool isTerminal() const noexcept {
    return this == &terminalNode;
  }

private:
  static vNode terminalNode;
};

/// Decision-diagram node for operation matrices: four successors, one per
/// (row, column) block U_ij of the matrix at this level (paper Sec. III-A).
/// Successor order is [U00, U01, U10, U11].
struct mNode {
  std::array<Edge<mNode>, 4> e{};
  mNode* next = nullptr;
  std::uint32_t ref = 0;
  std::uint32_t gen = 0;
  Qubit v = TERMINAL_LEVEL;

  static mNode* terminal() noexcept { return &terminalNode; }
  [[nodiscard]] bool isTerminal() const noexcept {
    return this == &terminalNode;
  }

private:
  static mNode terminalNode;
};

using vEdge = Edge<vNode>;
using mEdge = Edge<mNode>;

/// Number of successors of a node of the given type.
template <class Node> inline constexpr std::size_t RADIX = 0;
template <> inline constexpr std::size_t RADIX<vNode> = 2;
template <> inline constexpr std::size_t RADIX<mNode> = 4;

namespace detail {
inline std::size_t combineHash(std::size_t seed, std::size_t h) noexcept {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6U) + (seed >> 2U));
}
inline std::size_t ptrHash(const void* p) noexcept {
  // Pointers are at least 8-byte aligned; discard the dead bits.
  return reinterpret_cast<std::uintptr_t>(p) >> 3U;
}
} // namespace detail

/// Structural hash of a node's children (successor pointers and canonical
/// weight pointers). Because weights are table-canonical, equal sub-DDs
/// always hash equally.
template <class Node> std::size_t hashNode(const Node& n) noexcept {
  std::size_t h = 0;
  for (const auto& edge : n.e) {
    h = detail::combineHash(h, detail::ptrHash(edge.p));
    h = detail::combineHash(h, detail::ptrHash(edge.w.r));
    h = detail::combineHash(h, detail::ptrHash(edge.w.i));
  }
  return h;
}

template <class Node>
bool nodesStructurallyEqual(const Node& a, const Node& b) noexcept {
  for (std::size_t k = 0; k < RADIX<Node>; ++k) {
    if (!(a.e[k] == b.e[k])) {
      return false;
    }
  }
  return true;
}

} // namespace qdd
