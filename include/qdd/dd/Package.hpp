#pragma once

#include "qdd/complex/Complex.hpp"
#include "qdd/complex/ComplexValue.hpp"
#include "qdd/dd/ComputeTable.hpp"
#include "qdd/dd/GateMatrix.hpp"
#include "qdd/dd/Node.hpp"
#include "qdd/dd/TaskForker.hpp"
#include "qdd/dd/UniqueTable.hpp"
#include "qdd/mem/MemoryManager.hpp"
#include "qdd/mem/StatsRegistry.hpp"

#include <array>
#include <cassert>
#include <complex>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace qdd {

/// How matrix DDs represent identity structure (arXiv:2406.11959,
/// "Stripping Quantum Decision Diagrams of their Identity").
enum class IdentityMode : std::uint8_t {
  /// Identity-skipping edges: a matrix node whose successors are
  /// [a, 0, 0, a] with identical sub-edges is never materialized — the edge
  /// points directly to `a`, and every level between an edge's source and
  /// its target (and every level below a terminal matrix edge) implicitly
  /// carries the identity. Single-qubit gate DDs are a single node
  /// regardless of the system size, and `makeIdent(n)` is the bare
  /// terminal edge.
  Strip,
  /// Legacy representation: every level is materialized explicitly, so a
  /// single-qubit gate on an n-qubit system owns an n-level identity tower.
  Materialize,
};

/// Parses "strip"/"materialize"; anything else falls back to Strip.
IdentityMode parseIdentityMode(const char* value) noexcept;
/// Mode selected by the QDD_DD_IDENTITY environment variable (default Strip).
IdentityMode identityModeFromEnv();
/// Process-wide default used by newly constructed packages (initialized from
/// QDD_DD_IDENTITY; the mode of an existing Package never changes).
IdentityMode globalIdentityMode();
void setGlobalIdentityMode(IdentityMode mode);
const char* toString(IdentityMode mode) noexcept;

/// Whether a package's tables are safe for concurrent access from forked DD
/// subtasks (docs/PARALLELISM.md, "Intra-circuit parallelism").
enum class ConcurrencyMode : std::uint8_t {
  /// Single-threaded package: unlocked tables, plain counters. The default.
  Serial,
  /// Shared-safe package: sharded unique tables, striped compute caches,
  /// CAS-published real-table entries, atomic reference counts. Still fully
  /// usable from a single thread; installing a TaskForker (`setForker`)
  /// additionally makes `multiply`/`add` fork child subproblems onto it.
  /// One *user* thread drives the package at a time — concurrency happens
  /// only inside a fork/join region the package itself opens.
  Concurrent,
};

/// Parses "parallel" (from QDD_APPLY) to Concurrent; anything else Serial.
ConcurrencyMode parseConcurrencyMode(const char* value) noexcept;
/// Mode selected by the QDD_APPLY environment variable (Concurrent iff
/// QDD_APPLY=parallel).
ConcurrencyMode concurrencyModeFromEnv();
/// Process-wide default used by newly constructed packages (initialized from
/// QDD_APPLY; the mode of an existing Package never changes).
ConcurrencyMode globalConcurrencyMode();
void setGlobalConcurrencyMode(ConcurrencyMode mode);
const char* toString(ConcurrencyMode mode) noexcept;

/// Normalization scheme applied when creating nodes (paper Sec. III-A and
/// footnote 3).
enum class NormalizationScheme : std::uint8_t {
  /// Divide outgoing weights by the first weight of largest magnitude.
  /// This is the scheme used throughout the paper's figures (e.g. the
  /// Bell-state DD of Fig. 2(a) with root weight 1/sqrt(2) and inner
  /// weights 1).
  Largest,
  /// Divide by the 2-norm of the outgoing weights (and make the first
  /// non-zero weight real non-negative), so that squared edge weights are
  /// directly branch probabilities — enabling the sampling scheme of [16]
  /// (footnote 3). Applied to vector nodes only; matrices always use
  /// `Largest`.
  Norm,
};

/// The decision-diagram package: unique tables, compute tables, and the
/// complex-number table, together with all DD construction and manipulation
/// operations the paper describes (Sec. III) — representation of states and
/// matrices, tensor products (Fig. 3), addition and matrix multiplication
/// (Fig. 4), measurement/sampling ([16]), and the canonicity that underlies
/// equivalence checking (Sec. III-C).
class Package {
public:
  explicit Package(std::size_t nqubits,
                   NormalizationScheme scheme = NormalizationScheme::Largest,
                   double tolerance = RealTable::DEFAULT_TOLERANCE,
                   IdentityMode identityMode = globalIdentityMode(),
                   ConcurrencyMode concurrencyMode = globalConcurrencyMode());

  /// Unique-table shards of a Concurrent package (serial packages use 1).
  static constexpr std::size_t CONCURRENT_SHARDS = 16;
  /// Default number of recursion levels `multiply`/`add` fork when a
  /// TaskForker is installed (2^d-ish leaf tasks per operation).
  static constexpr int DEFAULT_FORK_DEPTH = 3;

  Package(const Package&) = delete;
  Package& operator=(const Package&) = delete;

  [[nodiscard]] std::size_t qubits() const noexcept { return nqubits; }
  /// Grows the package to support at least `n` qubits.
  void resize(std::size_t n);
  /// Shrinks the package to exactly `n` qubits, releasing all nodes at the
  /// removed levels (including the pinned identity DDs above `n`). No live
  /// user-held edge may still point into the removed levels. Advances the
  /// allocation generation so stale compute-cache entries are rejected
  /// lazily, then forces a garbage collection.
  void shrink(std::size_t n);

  [[nodiscard]] double tolerance() const noexcept { return cTable.tolerance(); }
  [[nodiscard]] NormalizationScheme normalizationScheme() const noexcept {
    return scheme;
  }
  /// Matrix-DD identity representation of this package, fixed at
  /// construction. Under `Strip`, matrix edges skip identity levels: a node
  /// at level `v` reached from level `u > v + 1` represents I^(u-v-1) (x) M,
  /// and a terminal matrix edge represents w * I on all remaining levels.
  [[nodiscard]] IdentityMode identityMode() const noexcept { return idMode; }
  ComplexTable& complexTable() noexcept { return cTable; }

  /// Table concurrency mode, fixed at construction.
  [[nodiscard]] ConcurrencyMode concurrencyMode() const noexcept {
    return concurrency;
  }
  [[nodiscard]] bool isConcurrent() const noexcept {
    return concurrency == ConcurrencyMode::Concurrent;
  }

  // --- intra-circuit parallelism (docs/PARALLELISM.md) ------------------

  /// Installs (or, with nullptr, removes) the fork/join engine. Only legal
  /// on a Concurrent package and at a quiescent point. While a forker is
  /// installed, `multiply`/`add` fork the top `forkDepth` recursion levels'
  /// child subproblems onto it; results are pointer-identical to the serial
  /// ones (same canonical tables, same per-child arithmetic). The forker
  /// must outlive every subsequent operation.
  void setForker(TaskForker* f, int forkDepth = DEFAULT_FORK_DEPTH) noexcept {
    assert((f == nullptr || isConcurrent()) &&
           "setForker requires a Concurrent package");
    taskForker = f;
    forkBudget = forkDepth < 0 ? 0 : forkDepth;
  }
  [[nodiscard]] TaskForker* forker() const noexcept { return taskForker; }
  /// True while a fork/join region is open (forked subtasks may be in
  /// flight). Garbage collection refuses to run in that state.
  [[nodiscard]] bool inParallelRegion() const noexcept {
    return parallelDepth > 0;
  }

  /// Enables/disables operation memoization (footnote 4). Intended for
  /// ablation studies only — see bench_ablation_tables.
  void setComputeTablesEnabled(bool enabled) noexcept {
    computeTablesEnabled = enabled;
  }
  [[nodiscard]] bool computeTablesAreEnabled() const noexcept {
    return computeTablesEnabled;
  }

  // --- node construction (normalizing) ---------------------------------

  /// Creates a canonical vector node at level `v` from the given successor
  /// edges, applying the active normalization scheme. Returns the normalized
  /// edge pointing to the (hash-consed) node.
  vEdge makeVecNode(Qubit v, const std::array<vEdge, 2>& edges);
  /// Creates a canonical matrix node at level `v`; successor order is
  /// [U00, U01, U10, U11] as in the paper (Ex. 7).
  mEdge makeMatNode(Qubit v, const std::array<mEdge, 4>& edges);

  /// Interns a complex value in this package's weight table.
  Complex lookup(const ComplexValue& c) { return cTable.lookup(c); }

  /// Canonical weight products with pointer elision: when at most one factor
  /// differs from exactly one, the product IS that factor (already interned),
  /// so both the complex multiply and the RealTable lookup are skipped.
  /// Bit-identical to the value path because RealTable entries are pairwise
  /// more than `tol` apart, hence lookup(val(X)) == X for canonical X.
  /// Non-trivial products are memoized in `mulWeightTable`, keyed on the
  /// exact tagged weight pointers; a hit replaces the complex multiply and
  /// both RealTable walks with one direct-mapped probe. Products that fall
  /// inside the tolerance window canonicalize to `Complex::zero`.
  Complex mulWeights(const Complex& a, const Complex& b);
  /// Three-factor variant (left-associated, matching `a * b * c`), memoized
  /// in `mulWeight3Table`; returns Complex::zero when the computed product
  /// falls inside the tolerance window, which callers treat as the zero
  /// edge.
  Complex mulWeights3(const Complex& a, const Complex& b, const Complex& c);
  /// Shared tail of mulWeights / mulWeights3 once exact-one factors are
  /// elided down to two non-trivial ones: canonicalizes the operand order
  /// (complex multiplication commutes bit-exactly), probes the memo, and
  /// falls back to the SIMD multiply + RealTable intern.
  Complex mulWeightsCached(const Complex& a, const Complex& b);

  // --- states ------------------------------------------------------------

  /// |0...0> on `n` qubits.
  vEdge makeZeroState(std::size_t n);
  /// Computational basis state |bits>, where bits[k] is the value of qubit k.
  vEdge makeBasisState(std::size_t n, const std::vector<bool>& bits);
  /// (|0...0> + |1...1>)/sqrt(2) — the generalized Bell/GHZ state.
  vEdge makeGHZState(std::size_t n);
  /// Equal superposition of all single-excitation basis states.
  vEdge makeWState(std::size_t n);
  /// Builds a DD from a dense state vector of length 2^n (n >= 1).
  vEdge makeStateFromVector(const std::vector<std::complex<double>>& vec);

  // --- matrices ------------------------------------------------------------

  /// Identity on qubits 0..n-1 (cached, reference-held by the package).
  mEdge makeIdent(std::size_t n);
  /// DD of a single-qubit gate applied to `target` on an `n`-qubit system
  /// (the tensor-product extension of Ex. 3/Fig. 3 performed natively).
  mEdge makeGateDD(const GateMatrix& mat, std::size_t n, Qubit target);
  /// DD of a (multi-)controlled single-qubit gate.
  mEdge makeGateDD(const GateMatrix& mat, std::size_t n,
                   const QubitControls& controls, Qubit target);
  /// DD of a (controlled) SWAP of qubits `t1` and `t2`.
  mEdge makeSWAPDD(std::size_t n, const QubitControls& controls, Qubit t1,
                   Qubit t2);
  /// DD of an arbitrary two-qubit gate (row-major 4x4, with `t1` the
  /// more-significant and `t0` the less-significant matrix index qubit).
  mEdge makeTwoQubitGateDD(const TwoQubitGateMatrix& mat, std::size_t n,
                           Qubit t1, Qubit t0);
  /// Builds a DD from a dense row-major 2^n x 2^n matrix.
  mEdge makeMatrixFromDense(const std::vector<std::complex<double>>& mat,
                            std::size_t n);

  // --- direct gate application (simulation hot path) ------------------------
  //
  // Applies a (multi-)controlled single-qubit gate directly to a state DD by
  // recursing on the state, without ever constructing the gate's matrix DD or
  // touching the matrix-vector compute table. Identity levels above the
  // target are rebuilt structurally, control branches short-circuit (the
  // control-inactive part of the state is reused untouched), diagonal gates
  // (Z/S/T/P(theta)) reduce to edge-weight rescaling along the satisfied
  // path, and permutation gates (X/CX) reduce to child swaps. Results are
  // canonical and bit-identical to `multiply(makeGateDD(...), v)` — see
  // tests/test_apply.cpp and docs/DD_PRIMER.md ("Gate application & caching").
  //
  // Requirements: `v` must be a fully expanded state whose root level is at
  // least the target and every control (states built by this package always
  // are); controls must be distinct from the target.

  vEdge applyGate(const GateMatrix& mat, Qubit target, const vEdge& v);
  vEdge applyGate(const GateMatrix& mat, Qubit target,
                  const QubitControls& controls, const vEdge& v);
  /// (Controlled) SWAP of `t1` and `t2`, realized as three CX fast-path
  /// applications (pure child splices, no additions).
  vEdge applySwap(Qubit t1, Qubit t2, const QubitControls& controls,
                  const vEdge& v);

  /// How often each apply kernel fired. `fallback` counts gate applications
  /// that went through the general `multiply` recursion instead (incremented
  /// by callers via `noteApplyFallback`, e.g. for two-qubit unitaries or in
  /// the `QDD_APPLY=general` ablation), so
  /// coverage = fast / (fast + fallback) is meaningful across modes.
  [[nodiscard]] const mem::ApplyPathStats& applyPathCounters() const noexcept {
    return applyCounters;
  }
  void noteApplyFallback() noexcept { ++applyCounters.fallback; }

  // --- operations -----------------------------------------------------------

  vEdge add(const vEdge& x, const vEdge& y);
  mEdge add(const mEdge& x, const mEdge& y);
  /// Matrix-vector product U|phi> (paper Ex. 9 / Fig. 4).
  vEdge multiply(const mEdge& x, const vEdge& y);
  /// Matrix-matrix product X*Y.
  mEdge multiply(const mEdge& x, const mEdge& y);
  /// Tensor product: `top` acts on the more-significant qubits, `bottom` on
  /// the less-significant ones. Realized by terminal replacement (Ex. 8 /
  /// Fig. 3).
  mEdge kron(const mEdge& top, const mEdge& bottom);
  /// Tensor product with an explicit span for `bottom`. Required for exact
  /// placement under identity skipping, where the root level of `bottom` may
  /// sit below its intended top level (e.g. kron(H, I) needs bottomQubits to
  /// know how far up to shift `top`).
  mEdge kron(const mEdge& top, const mEdge& bottom, std::size_t bottomQubits);
  vEdge kron(const vEdge& top, const vEdge& bottom);
  mEdge conjugateTranspose(const mEdge& a);
  /// <x|y>.
  ComplexValue innerProduct(const vEdge& x, const vEdge& y);
  /// |<x|y>|^2.
  double fidelity(const vEdge& x, const vEdge& y);
  /// Trace of the matrix, taking the span from the root level. Under
  /// identity skipping the root may sit below the intended system size
  /// (skipped top levels are invisible here) — prefer the explicit-span
  /// overload whenever the qubit count is known.
  ComplexValue trace(const mEdge& a);
  /// Trace of the represented 2^nq x 2^nq matrix. Skipped identity levels
  /// contribute a factor of two each: tr(I_k (x) M) = 2^k * tr(M).
  ComplexValue trace(const mEdge& a, std::size_t nq);
  /// Partial trace over the qubits marked in `eliminate` (indexed by level).
  /// The traced-out levels are removed from the diagram; the result acts on
  /// the remaining qubits (compacted downwards). This is the operation the
  /// paper invokes to describe reset semantics (Sec. IV-B).
  mEdge partialTrace(const mEdge& a, const std::vector<bool>& eliminate);
  /// <phi| U |phi>.
  ComplexValue expectationValue(const mEdge& u, const vEdge& phi);
  /// Applies a qubit permutation to a state: qubit k of the result is qubit
  /// permutation[k] of the input (realized by multiplying SWAP DDs).
  vEdge permuteQubits(const vEdge& e, const std::vector<Qubit>& permutation);
  mEdge permuteQubits(const mEdge& e, const std::vector<Qubit>& permutation);

  // --- element access / export ----------------------------------------------

  /// Amplitude <i|phi> for basis-state index i (paper: "reconstructed from
  /// the multiplication of the edge weights along the path").
  ComplexValue getValueByIndex(const vEdge& e, std::uint64_t i);
  /// Matrix entry U[row][col].
  ComplexValue getMatrixEntry(const mEdge& e, std::uint64_t row,
                              std::uint64_t col);
  /// Dense export of a state (n <= 30 guarded by assertion of vector size).
  std::vector<std::complex<double>> getVector(const vEdge& e);
  /// Dense row-major export of a matrix, span taken from the root level
  /// (see the trace overloads for the identity-skipping caveat).
  std::vector<std::complex<double>> getMatrix(const mEdge& e);
  /// Dense row-major export of the represented 2^n x 2^n matrix, expanding
  /// skipped identity levels explicitly.
  std::vector<std::complex<double>> getMatrix(const mEdge& e, std::size_t n);
  /// Squared norm <phi|phi>.
  double norm(const vEdge& e);

  // --- measurement, collapse, reset (paper Sec. IV-B) -----------------------

  /// Probability of reading |1> when measuring qubit `q`.
  double probabilityOfOne(const vEdge& e, Qubit q);
  /// Measures qubit `q`, collapses the state (updating `root` and reference
  /// counts), and returns the outcome (0/1).
  int measureOneCollapsing(vEdge& root, Qubit q, std::mt19937_64& rng);
  /// Collapses qubit `q` to the given outcome (as if that outcome had been
  /// measured). The outcome must have non-zero probability.
  void forceMeasureOne(vEdge& root, Qubit q, bool outcome);
  /// Measures all qubits; returns the result as a bitstring q_{n-1}...q_0.
  /// If `collapse`, `root` is replaced by the post-measurement basis state.
  std::string measureAll(vEdge& root, bool collapse, std::mt19937_64& rng);
  /// Non-destructive single-shot sample (the paper stresses that classical
  /// measurements "can be repeated on the same state").
  std::string sample(const vEdge& root, std::mt19937_64& rng);
  /// Repeated non-destructive sampling; returns counts per bitstring.
  std::map<std::string, std::size_t> sampleCounts(const vEdge& root,
                                                  std::size_t shots,
                                                  std::mt19937_64& rng);
  /// Resets qubit `q` to |0> probabilistically as described in Sec. IV-B:
  /// the qubit is "measured", the surviving branch becomes the |0> branch.
  /// Returns the implicit measurement outcome.
  int resetQubit(vEdge& root, Qubit q, std::mt19937_64& rng);
  /// Reset with a forced implicit outcome (for deterministic stepping UIs).
  void resetQubitTo(vEdge& root, Qubit q, bool outcome);

  // --- reference counting & garbage collection ----------------------------

  void incRef(const vEdge& e) noexcept;
  void decRef(const vEdge& e) noexcept;
  void incRef(const mEdge& e) noexcept;
  void decRef(const mEdge& e) noexcept;
  /// Collects unreferenced nodes and weight-table entries. Returns true if a
  /// collection actually ran. With `force == false` this is cheap and only
  /// collects when tables have grown past their thresholds.
  bool garbageCollect(bool force = false);

  // --- statistics -----------------------------------------------------------

  /// Number of nodes in the DD rooted at `e` (terminal not counted, per the
  /// paper's convention in Ex. 6).
  static std::size_t size(const vEdge& e);
  static std::size_t size(const mEdge& e);
  /// Active node count per qubit level of the DD rooted at `e` (index =
  /// level; the sum over all levels equals `size(e)`). Feeds the per-step
  /// metrics time series of the observability layer.
  static std::vector<std::size_t> sizeByLevel(const vEdge& e);
  static std::vector<std::size_t> sizeByLevel(const mEdge& e);

  /// Full snapshot of every table and allocator: unique tables, compute
  /// tables (with stale-rejection counts), the real-number table, and
  /// garbage-collection counters. Serializable to JSON via
  /// `mem::StatsRegistry::toJson`.
  [[nodiscard]] mem::StatsRegistry statistics() const;
  /// Compact snapshot cheap enough to record after every operation.
  [[nodiscard]] mem::TablePressure tablePressure() const;
  /// Current allocation generation (bumped by every GC / shrink).
  [[nodiscard]] std::uint32_t gcGeneration() const noexcept {
    return generation;
  }

private:
  template <class Node>
  void incRefEdge(const Edge<Node>& e) noexcept;
  template <class Node>
  void decRefEdge(const Edge<Node>& e) noexcept;

  /// Publishes the new allocation generation to every compute table after a
  /// collection/shrink, enabling their freshness-epoch lookup shortcut.
  void setComputeEpochs() noexcept;

  vEdge normalizeLargest(Qubit v, std::array<vEdge, 2> edges);
  vEdge normalizeNorm(Qubit v, std::array<vEdge, 2> edges);

  vEdge makeStateFromVector(const std::complex<double>* begin,
                            const std::complex<double>* end, Qubit level);
  mEdge makeMatrixFromDense(const std::vector<std::complex<double>>& mat,
                            std::size_t dim, std::size_t rowOff,
                            std::size_t colOff, std::size_t blockDim,
                            Qubit level);

  // Fork-budget recursion bodies (docs/PARALLELISM.md). `fork` is the
  // remaining number of recursion levels allowed to fork child subproblems
  // onto the installed TaskForker; 0 is the serial path and is what every
  // call compiles down to on a Serial package. The public wrappers open a
  // ParallelRegion and seed the budget.
  vEdge add(const vEdge& x, const vEdge& y, int fork);
  mEdge add(const mEdge& x, const mEdge& y, int fork);
  vEdge multiply2(mNode* x, vNode* y, int fork);
  mEdge multiply2(mNode* x, mNode* y, int fork);
  /// One result child of the matrix-vector (resp. matrix-matrix) multiply
  /// recursion: the sum over j of x_{i j} * y_j terms. Factored out so the
  /// forked tasks and the serial loop run the exact same arithmetic (the
  /// canonicity anchor: identical per-child FP sequences).
  vEdge multVecChildSum(mNode* x, vNode* y, bool xAligned, std::size_t i,
                        int fork);
  mEdge multMatChildSum(mNode* x, mNode* y, bool xAligned, bool yAligned,
                        std::size_t i, std::size_t k, int fork);
  /// One result child of the add recursion (operand child k, weights
  /// composed), shared by the forked tasks and the serial loop.
  vEdge addVecChild(const vEdge& a, const vEdge& b, std::size_t k, int fork);
  mEdge addMatChild(const mEdge& a, const mEdge& b, Qubit va, Qubit vb,
                    Qubit v, std::size_t k, int fork);
  ComplexValue innerProduct2(vNode* x, vNode* y);

  /// RAII guard the public operation wrappers open: marks the package as
  /// inside a fork/join region (blocking GC) when parallel execution is
  /// possible, hands out the fork budget, and on close performs the
  /// real-table growth deferred by concurrent lookups. Nested operations
  /// (`multiply` inside `makeSWAPDD`, recursion through public `add`) see
  /// `parallelDepth > 0` and stay serial within the outer region's tasks.
  class ParallelRegion {
  public:
    explicit ParallelRegion(Package& package) noexcept
        : pkg(package), active(package.taskForker != nullptr &&
                               package.isConcurrent() &&
                               package.parallelDepth == 0) {
      if (active) {
        ++pkg.parallelDepth;
        ++pkg.parallelStats.regions;
      }
    }
    ParallelRegion(const ParallelRegion&) = delete;
    ParallelRegion& operator=(const ParallelRegion&) = delete;
    ~ParallelRegion() {
      if (active) {
        --pkg.parallelDepth;
        // Quiescent again: perform deferred bucket-array growth so the next
        // region starts with a healthy load factor.
        pkg.cTable.realTable().growIfNeeded();
      }
    }
    [[nodiscard]] int budget() const noexcept {
      return active ? pkg.forkBudget : 0;
    }

  private:
    Package& pkg;
    bool active;
  };
  friend class ParallelRegion;

  /// Polled at fork points; throws OperationCancelled when the forker
  /// reports cancellation. The counter tallies *observations* (each forked
  /// task that noticed the cancellation), updated atomically because tasks
  /// observe it concurrently.
  void checkCancelled() {
    if (taskForker != nullptr && taskForker->cancelled()) {
      __atomic_fetch_add(&parallelStats.cancelled, 1, __ATOMIC_RELAXED);
      throw OperationCancelled{};
    }
  }
  void noteForks(std::size_t n) noexcept {
    __atomic_fetch_add(&parallelStats.forks, n, __ATOMIC_RELAXED);
  }

  void getVectorRec(const vEdge& e, ComplexValue amp, std::uint64_t index,
                    std::vector<std::complex<double>>& out);
  void getMatrixRec(const mEdge& e, ComplexValue amp, std::uint64_t row,
                    std::uint64_t col, std::uint64_t dim, Qubit expect,
                    std::vector<std::complex<double>>& out);

  /// Squared norm of the sub-DD under `p` (weight-1 root), memoized per call
  /// into `cache`.
  double nodeNorm(vNode* p, std::map<vNode*, double>& cache);

  /// Collapse helper shared by measurement and reset.
  void applyCollapse(vEdge& root, Qubit q, bool outcome, bool shiftToZero,
                     double outcomeProbability);

  mEdge partialTraceRec(const mEdge& a, Qubit expect,
                        const std::vector<bool>& eliminate,
                        const std::vector<Qubit>& levelMap,
                        std::map<const mNode*, mEdge>& memo);

  std::size_t nqubits;
  NormalizationScheme scheme;
  IdentityMode idMode;
  ConcurrencyMode concurrency;
  bool computeTablesEnabled = true;

  /// Fork/join engine (nullptr = always serial) and per-operation fork
  /// budget. Only mutated at quiescent points via setForker.
  TaskForker* taskForker = nullptr;
  int forkBudget = DEFAULT_FORK_DEPTH;
  /// > 0 while inside a fork/join region. Only the owning user thread
  /// mutates it (regions open/close at the public operation boundary), so a
  /// plain int suffices.
  int parallelDepth = 0;
  mem::ParallelStats parallelStats;

  ComplexTable cTable;
  // Node storage. Declared before the unique tables, which hold references
  // into the managers.
  mem::MemoryManager<vNode> vMem;
  mem::MemoryManager<mNode> mMem;
  UniqueTable<vNode> vTable;
  UniqueTable<mNode> mTable;

  // Table sizes: multiplication dominates (every gate application), so it
  // gets the largest cache; the unary/rare operations get small ones to
  // keep Package construction and GC-time clearing cheap.
  ComputeTable<vEdge, vEdge, vEdge, (1U << 14U)> addVecTable;
  ComputeTable<mEdge, mEdge, mEdge, (1U << 14U)> addMatTable;
  ComputeTable<mNode*, vNode*, vEdge, (1U << 16U)> multMatVecTable;
  ComputeTable<mNode*, mNode*, mEdge, (1U << 16U)> multMatMatTable;
  ComputeTable<mNode*, mNode*, mEdge, (1U << 12U)> conjTransTable;
  ComputeTable<vNode*, vNode*, ComplexValue, (1U << 12U)> innerProductTable;
  // Scalar weight-product memos (see mulWeights / mulWeights3). Distinct
  // canonical weight pairs number far below distinct node pairs, so small
  // tables reach high hit rates while staying cache-resident.
  ComputeTable<Complex, Complex, Complex, (1U << 12U)> mulWeightTable;
  ComputeTable<Complex, WeightPair, Complex, (1U << 12U)> mulWeight3Table;

  /// idTable[k] is the identity DD on levels 0..k-1 (idTable[0] = 1-terminal
  /// edge). Entries are reference-held by the package so they survive GC.
  std::vector<mEdge> idTable;

  /// Allocation-generation epoch shared by vMem, mMem, and the real table's
  /// entry pool. Bumped (and synced into all three) before any published
  /// object may be freed — i.e. in garbageCollect and shrink — so compute
  /// tables can reject stale entries lazily instead of being cleared.
  std::uint32_t generation = 0;

  mem::ApplyPathStats applyCounters;

  std::size_t gcRuns = 0;
  std::size_t collectedVectorNodes = 0;
  std::size_t collectedMatrixNodes = 0;
  std::size_t collectedReals = 0;
};

} // namespace qdd
