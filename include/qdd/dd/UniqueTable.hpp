#pragma once

#include "qdd/dd/Node.hpp"
#include "qdd/mem/MemoryManager.hpp"
#include "qdd/mem/StatsRegistry.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qdd {

/// Hash-consing table ensuring canonicity: structurally identical nodes at
/// the same level are represented by a single object, so DD equality reduces
/// to root-pointer comparison (the property paper Sec. III-C relies on for
/// equivalence checking).
///
/// Node storage lives in a `mem::MemoryManager` owned by the package; the
/// table itself only manages per-level slot arrays. Each level is a flat
/// open-addressed array of `{node, hash32}` slots probed linearly: the
/// stored 32-bit fingerprint filters almost every mismatching probe without
/// dereferencing the candidate node, so a miss costs sequential scans of one
/// small slot array instead of a pointer chase per chain link. Levels start
/// small and double (rehash) when their load factor reaches 3/4, so table
/// capacity follows the workload instead of being fixed at compile time.
///
/// There are no tombstones, ever: deletion happens only wholesale during
/// garbage collection / shrinking, which rebuilds each touched level's slot
/// array from the survivors (their stored fingerprints are still valid —
/// GC never mutates a surviving node's children). Garbage collection is
/// reference-count based and sweeps levels top-down so that cascading
/// releases complete in a single pass (children are always at strictly
/// lower levels).
template <class Node> class UniqueTable {
public:
  // Small initial capacity per level: typical DDs keep most levels sparse,
  // and busy levels double their slot array on demand (load factor >= 3/4).
  static constexpr std::size_t INITIAL_BUCKETS = 1U << 6U; // per level
  static constexpr std::size_t GC_INITIAL_THRESHOLD = 131072;

  UniqueTable(mem::MemoryManager<Node>& manager, std::size_t nvars)
      : mgr(&manager), levels(nvars) {}

  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  /// Grows the table to `nvars` levels. Shrinking without a release callback
  /// is not allowed (nodes at removed levels would leak their children).
  void resize(std::size_t nvars) {
    assert(nvars >= levels.size() &&
           "shrinking requires a release-children callback");
    levels.resize(nvars);
  }

  /// Resizes to `nvars` levels. When shrinking, every node at a removed
  /// level is handed to `releaseChildren` (so the caller can decrement child
  /// references) and returned to the memory manager. The caller is
  /// responsible for ensuring no live edge still points into the removed
  /// levels and for advancing the manager's allocation generation first if
  /// any freed node may still be referenced by a compute-cache entry.
  template <class ReleaseChildren>
  void resize(std::size_t nvars, ReleaseChildren&& releaseChildren) {
    for (std::size_t level = nvars; level < levels.size(); ++level) {
      for (auto& slot : levels[level].slots) {
        if (slot.node != nullptr) {
          releaseChildren(slot.node);
          mgr->release(slot.node);
          slot.node = nullptr;
          assert(numNodes > 0);
          --numNodes;
        }
      }
      levels[level].entries = 0;
    }
    levels.resize(nvars);
  }

  [[nodiscard]] std::size_t numLevels() const noexcept {
    return levels.size();
  }

  /// Returns a fresh node (generation-stamped by the memory manager) to be
  /// filled by the caller and passed to `lookup`.
  Node* getNode() { return mgr->get(); }

  /// Returns a node to the memory manager (used when `lookup` finds an
  /// existing equivalent node, and during garbage collection).
  void returnNode(Node* n) noexcept { mgr->release(n); }

  /// Looks up `candidate` (fully initialized, level set, children set) in the
  /// table. If an equivalent node exists, `candidate` is recycled and the
  /// existing node returned together with `inserted = false`. Otherwise the
  /// candidate is inserted and returned with `inserted = true`.
  Node* lookup(Node* candidate, bool& inserted) {
    ++numLookups;
    const auto levelIdx = static_cast<std::size_t>(candidate->v);
    assert(levelIdx < levels.size());
    Level& level = levels[levelIdx];
    // Grow before probing so the insert position found below stays valid.
    if ((level.entries + 1) * 4 >= level.slots.size() * 3) {
      growLevel(level);
    }
    // The fingerprint seeds the probe sequence (not the full hash), so a
    // GC/rehash rebuild — which only has the fingerprint — reproduces the
    // exact same probe order.
    const std::uint32_t fp = detail::fold32(hashNode(*candidate));
    const std::size_t mask = level.slots.size() - 1;
    std::size_t idx = fp & mask;
    std::size_t probe = 1;
    for (;; idx = (idx + 1) & mask, ++probe) {
      Slot& slot = level.slots[idx];
      if (slot.node == nullptr) {
        break;
      }
      if (slot.hash == fp && nodesStructurallyEqual(*slot.node, *candidate)) {
        ++numHits;
        numProbes += probe;
        maxProbe = std::max(maxProbe, probe);
        // Candidates are never published to compute caches, so recycling
        // them mid-epoch is safe.
        mgr->release(candidate);
        inserted = false;
        return slot.node;
      }
    }
    numProbes += probe;
    maxProbe = std::max(maxProbe, probe);
    if (probe > 1) {
      ++numCollisions;
    }
    level.slots[idx] = Slot{candidate, fp};
    ++level.entries;
    ++numNodes;
    peakNodes = std::max(peakNodes, numNodes);
    inserted = true;
    return candidate;
  }

  /// Sweeps all levels top-down, removing (and recycling) nodes with zero
  /// reference count. The caller must decrement child references via the
  /// provided callback when a node dies, and must have advanced the memory
  /// manager's allocation generation beforehand. Touched levels are rebuilt
  /// from the survivors, so the probe sequences stay tombstone-free.
  /// Returns the number of collected nodes.
  template <class ReleaseChildren>
  std::size_t garbageCollect(ReleaseChildren&& releaseChildren) {
    std::size_t collected = 0;
    std::vector<Slot> survivors;
    for (auto levelIdx = levels.size(); levelIdx-- > 0;) {
      Level& level = levels[levelIdx];
      if (level.entries == 0) {
        continue;
      }
      std::size_t dead = 0;
      for (const auto& slot : level.slots) {
        if (slot.node != nullptr && slot.node->ref == 0) {
          ++dead;
        }
      }
      if (dead == 0) {
        continue;
      }
      survivors.clear();
      survivors.reserve(level.entries - dead);
      for (auto& slot : level.slots) {
        if (slot.node == nullptr) {
          continue;
        }
        if (slot.node->ref == 0) {
          releaseChildren(slot.node);
          mgr->release(slot.node);
        } else {
          survivors.push_back(slot);
        }
        slot = Slot{};
      }
      for (const auto& slot : survivors) {
        reinsert(level, slot);
      }
      level.entries = survivors.size();
      collected += dead;
    }
    numNodes -= collected;
    if (collected < numNodes / 8) {
      gcThreshold *= 2;
    }
    return collected;
  }

  [[nodiscard]] bool possiblyNeedsCollection() const noexcept {
    return numNodes > gcThreshold;
  }

  /// Number of nodes currently stored in the table.
  [[nodiscard]] std::size_t size() const noexcept { return numNodes; }
  [[nodiscard]] std::size_t peakSize() const noexcept { return peakNodes; }
  [[nodiscard]] std::size_t lookups() const noexcept { return numLookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return numHits; }
  [[nodiscard]] std::size_t collisions() const noexcept {
    return numCollisions;
  }
  [[nodiscard]] std::size_t longestChain() const noexcept { return maxProbe; }
  [[nodiscard]] std::size_t probes() const noexcept { return numProbes; }
  [[nodiscard]] std::size_t rehashes() const noexcept { return numRehashes; }
  /// Nodes alive at this moment (stored + handed out via getNode).
  [[nodiscard]] std::size_t allocations() const noexcept {
    return mgr->live();
  }
  /// Total slot count across all levels.
  [[nodiscard]] std::size_t bucketCount() const noexcept {
    std::size_t total = 0;
    for (const auto& level : levels) {
      total += level.slots.size();
    }
    return total;
  }

  [[nodiscard]] mem::UniqueTableStats stats() const noexcept {
    mem::UniqueTableStats s;
    s.entries = numNodes;
    s.peakEntries = peakNodes;
    s.lookups = numLookups;
    s.hits = numHits;
    s.collisions = numCollisions;
    s.longestChain = maxProbe;
    s.probes = numProbes;
    s.levels = levels.size();
    s.buckets = bucketCount();
    s.rehashes = numRehashes;
    s.memory = mgr->stats();
    return s;
  }

  /// Visits every node currently in the table.
  template <class Visitor> void forEach(Visitor&& visit) const {
    for (const auto& level : levels) {
      for (const auto& slot : level.slots) {
        if (slot.node != nullptr) {
          visit(slot.node);
        }
      }
    }
  }

private:
  struct Slot {
    Node* node = nullptr;
    std::uint32_t hash = 0; ///< fold32 fingerprint of the full node hash
  };

  struct Level {
    std::vector<Slot> slots = std::vector<Slot>(INITIAL_BUCKETS);
    std::size_t entries = 0;
  };

  /// Inserts a slot known not to be present (rehash/GC rebuild): probes to
  /// the first empty slot. Only the fingerprint's low bits seed the probe,
  /// which is fine — the fingerprint already mixes the full hash.
  static void reinsert(Level& level, const Slot& slot) noexcept {
    const std::size_t mask = level.slots.size() - 1;
    std::size_t idx = slot.hash & mask;
    while (level.slots[idx].node != nullptr) {
      idx = (idx + 1) & mask;
    }
    level.slots[idx] = slot;
  }

  void growLevel(Level& level) {
    std::vector<Slot> old = std::move(level.slots);
    level.slots.assign(old.size() * 2, Slot{});
    for (const auto& slot : old) {
      if (slot.node != nullptr) {
        reinsert(level, slot);
      }
    }
    ++numRehashes;
  }

  mem::MemoryManager<Node>* mgr;
  std::vector<Level> levels;

  std::size_t numNodes = 0;
  std::size_t peakNodes = 0;
  std::size_t numLookups = 0;
  std::size_t numHits = 0;
  std::size_t numCollisions = 0;
  std::size_t maxProbe = 0;
  std::size_t numProbes = 0;
  std::size_t numRehashes = 0;
  std::size_t gcThreshold = GC_INITIAL_THRESHOLD;
};

} // namespace qdd
