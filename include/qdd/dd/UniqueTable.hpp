#pragma once

#include "qdd/dd/Node.hpp"

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace qdd {

/// Hash-consing table ensuring canonicity: structurally identical nodes at
/// the same level are represented by a single object, so DD equality reduces
/// to root-pointer comparison (the property paper Sec. III-C relies on for
/// equivalence checking).
///
/// Node memory is chunk-allocated and recycled through a free list; garbage
/// collection is reference-count based and sweeps levels top-down so that
/// cascading releases complete in a single pass (children are always at
/// strictly lower levels).
template <class Node> class UniqueTable {
public:
  static constexpr std::size_t NBUCKETS = 1U << 14U;
  static constexpr std::size_t INITIAL_ALLOC = 2048;
  static constexpr std::size_t GC_INITIAL_THRESHOLD = 131072;

  explicit UniqueTable(std::size_t nvars) : buckets(nvars) {
    for (auto& level : buckets) {
      level.assign(NBUCKETS, nullptr);
    }
  }

  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  void resize(std::size_t nvars) {
    const auto old = buckets.size();
    buckets.resize(nvars);
    for (std::size_t i = old; i < buckets.size(); ++i) {
      buckets[i].assign(NBUCKETS, nullptr);
    }
  }

  [[nodiscard]] std::size_t numLevels() const noexcept {
    return buckets.size();
  }

  /// Returns a fresh (uninitialized) node to be filled by the caller and
  /// passed to `lookup`.
  Node* getNode() {
    if (freeList != nullptr) {
      Node* n = freeList;
      freeList = n->next;
      ++liveNodes;
      return n;
    }
    if (chunks.empty() || chunkIndex == chunkSize) {
      if (!chunks.empty()) {
        chunkSize *= 2;
      }
      chunks.push_back(std::make_unique<Node[]>(chunkSize));
      chunkIndex = 0;
    }
    ++liveNodes;
    return &chunks.back()[chunkIndex++];
  }

  /// Returns a node to the free list (used when `lookup` finds an existing
  /// equivalent node, and during garbage collection).
  void returnNode(Node* n) noexcept {
    n->next = freeList;
    freeList = n;
    assert(liveNodes > 0);
    --liveNodes;
  }

  /// Looks up `candidate` (fully initialized, level set, children set) in the
  /// table. If an equivalent node exists, `candidate` is recycled and the
  /// existing node returned together with `inserted = false`. Otherwise the
  /// candidate is inserted and returned with `inserted = true`.
  Node* lookup(Node* candidate, bool& inserted) {
    ++numLookups;
    const auto level = static_cast<std::size_t>(candidate->v);
    assert(level < buckets.size());
    const std::size_t key = hashNode(*candidate) & (NBUCKETS - 1);
    for (Node* n = buckets[level][key]; n != nullptr; n = n->next) {
      if (nodesStructurallyEqual(*n, *candidate)) {
        ++numHits;
        returnNode(candidate);
        inserted = false;
        return n;
      }
    }
    candidate->next = buckets[level][key];
    buckets[level][key] = candidate;
    ++numNodes;
    peakNodes = std::max(peakNodes, numNodes);
    inserted = true;
    return candidate;
  }

  /// Sweeps all levels top-down, removing (and recycling) nodes with zero
  /// reference count. The caller must decrement child references via the
  /// provided callback when a node dies. Returns the number of collected
  /// nodes.
  template <class ReleaseChildren>
  std::size_t garbageCollect(ReleaseChildren&& releaseChildren) {
    std::size_t collected = 0;
    for (auto level = buckets.size(); level-- > 0;) {
      for (auto& bucket : buckets[level]) {
        Node** link = &bucket;
        while (*link != nullptr) {
          Node* n = *link;
          if (n->ref == 0) {
            *link = n->next;
            releaseChildren(n);
            returnNode(n);
            ++collected;
          } else {
            link = &n->next;
          }
        }
      }
    }
    numNodes -= collected;
    if (collected < numNodes / 8) {
      gcThreshold *= 2;
    }
    return collected;
  }

  [[nodiscard]] bool possiblyNeedsCollection() const noexcept {
    return numNodes > gcThreshold;
  }

  /// Number of nodes currently stored in the table.
  [[nodiscard]] std::size_t size() const noexcept { return numNodes; }
  [[nodiscard]] std::size_t peakSize() const noexcept { return peakNodes; }
  [[nodiscard]] std::size_t lookups() const noexcept { return numLookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return numHits; }
  /// Nodes alive at this moment (stored + handed out via getNode).
  [[nodiscard]] std::size_t allocations() const noexcept { return liveNodes; }

  /// Visits every node currently in the table.
  template <class Visitor> void forEach(Visitor&& visit) const {
    for (const auto& level : buckets) {
      for (Node* bucket : level) {
        for (Node* n = bucket; n != nullptr; n = n->next) {
          visit(n);
        }
      }
    }
  }

private:
  std::vector<std::vector<Node*>> buckets;
  std::vector<std::unique_ptr<Node[]>> chunks;
  std::size_t chunkIndex = 0;
  std::size_t chunkSize = INITIAL_ALLOC;
  Node* freeList = nullptr;

  std::size_t numNodes = 0;
  std::size_t peakNodes = 0;
  std::size_t liveNodes = 0;
  std::size_t numLookups = 0;
  std::size_t numHits = 0;
  std::size_t gcThreshold = GC_INITIAL_THRESHOLD;
};

} // namespace qdd
