#pragma once

#include "qdd/dd/Node.hpp"
#include "qdd/mem/MemoryManager.hpp"
#include "qdd/mem/StatsRegistry.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace qdd {

/// Hash-consing table ensuring canonicity: structurally identical nodes at
/// the same level are represented by a single object, so DD equality reduces
/// to root-pointer comparison (the property paper Sec. III-C relies on for
/// equivalence checking).
///
/// Node storage lives in a `mem::MemoryManager` owned by the package; the
/// table itself only manages the per-level bucket arrays. Each level starts
/// with a small bucket array and doubles it (rehashing the level's chains)
/// whenever the level's load factor exceeds one, so table capacity follows
/// the workload instead of being fixed at compile time. Garbage collection
/// is reference-count based and sweeps levels top-down so that cascading
/// releases complete in a single pass (children are always at strictly lower
/// levels).
template <class Node> class UniqueTable {
public:
  // Small initial capacity per level: typical DDs keep most levels sparse,
  // and busy levels double their bucket array on demand (load factor > 1).
  static constexpr std::size_t INITIAL_BUCKETS = 1U << 6U; // per level
  static constexpr std::size_t GC_INITIAL_THRESHOLD = 131072;

  UniqueTable(mem::MemoryManager<Node>& manager, std::size_t nvars)
      : mgr(&manager), levels(nvars) {}

  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  /// Grows the table to `nvars` levels. Shrinking without a release callback
  /// is not allowed (nodes at removed levels would leak their children).
  void resize(std::size_t nvars) {
    assert(nvars >= levels.size() &&
           "shrinking requires a release-children callback");
    levels.resize(nvars);
  }

  /// Resizes to `nvars` levels. When shrinking, every node at a removed
  /// level is handed to `releaseChildren` (so the caller can decrement child
  /// references) and returned to the memory manager. The caller is
  /// responsible for ensuring no live edge still points into the removed
  /// levels and for advancing the manager's allocation generation first if
  /// any freed node may still be referenced by a compute-cache entry.
  template <class ReleaseChildren>
  void resize(std::size_t nvars, ReleaseChildren&& releaseChildren) {
    for (std::size_t level = nvars; level < levels.size(); ++level) {
      for (auto& bucket : levels[level].buckets) {
        Node* n = bucket;
        while (n != nullptr) {
          Node* next = n->next;
          releaseChildren(n);
          mgr->release(n);
          assert(numNodes > 0);
          --numNodes;
          n = next;
        }
        bucket = nullptr;
      }
      levels[level].entries = 0;
    }
    levels.resize(nvars);
  }

  [[nodiscard]] std::size_t numLevels() const noexcept {
    return levels.size();
  }

  /// Returns a fresh node (generation-stamped by the memory manager) to be
  /// filled by the caller and passed to `lookup`.
  Node* getNode() { return mgr->get(); }

  /// Returns a node to the memory manager (used when `lookup` finds an
  /// existing equivalent node, and during garbage collection).
  void returnNode(Node* n) noexcept { mgr->release(n); }

  /// Looks up `candidate` (fully initialized, level set, children set) in the
  /// table. If an equivalent node exists, `candidate` is recycled and the
  /// existing node returned together with `inserted = false`. Otherwise the
  /// candidate is inserted and returned with `inserted = true`.
  Node* lookup(Node* candidate, bool& inserted) {
    ++numLookups;
    const auto levelIdx = static_cast<std::size_t>(candidate->v);
    assert(levelIdx < levels.size());
    Level& level = levels[levelIdx];
    if (level.entries >= level.buckets.size()) {
      growLevel(level);
    }
    const std::size_t hash = hashNode(*candidate);
    const std::size_t key = hash & (level.buckets.size() - 1);
    std::size_t chain = 0;
    for (Node* n = level.buckets[key]; n != nullptr; n = n->next) {
      ++chain;
      if (nodesStructurallyEqual(*n, *candidate)) {
        ++numHits;
        // Candidates are never published to compute caches, so recycling
        // them mid-epoch is safe.
        mgr->release(candidate);
        inserted = false;
        return n;
      }
    }
    if (level.buckets[key] != nullptr) {
      ++numCollisions;
    }
    maxChain = std::max(maxChain, chain + 1);
    candidate->next = level.buckets[key];
    level.buckets[key] = candidate;
    ++level.entries;
    ++numNodes;
    peakNodes = std::max(peakNodes, numNodes);
    inserted = true;
    return candidate;
  }

  /// Sweeps all levels top-down, removing (and recycling) nodes with zero
  /// reference count. The caller must decrement child references via the
  /// provided callback when a node dies, and must have advanced the memory
  /// manager's allocation generation beforehand. Returns the number of
  /// collected nodes.
  template <class ReleaseChildren>
  std::size_t garbageCollect(ReleaseChildren&& releaseChildren) {
    std::size_t collected = 0;
    for (auto levelIdx = levels.size(); levelIdx-- > 0;) {
      Level& level = levels[levelIdx];
      for (auto& bucket : level.buckets) {
        Node** link = &bucket;
        while (*link != nullptr) {
          Node* n = *link;
          if (n->ref == 0) {
            *link = n->next;
            releaseChildren(n);
            mgr->release(n);
            ++collected;
            assert(level.entries > 0);
            --level.entries;
          } else {
            link = &n->next;
          }
        }
      }
    }
    numNodes -= collected;
    if (collected < numNodes / 8) {
      gcThreshold *= 2;
    }
    return collected;
  }

  [[nodiscard]] bool possiblyNeedsCollection() const noexcept {
    return numNodes > gcThreshold;
  }

  /// Number of nodes currently stored in the table.
  [[nodiscard]] std::size_t size() const noexcept { return numNodes; }
  [[nodiscard]] std::size_t peakSize() const noexcept { return peakNodes; }
  [[nodiscard]] std::size_t lookups() const noexcept { return numLookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return numHits; }
  [[nodiscard]] std::size_t collisions() const noexcept {
    return numCollisions;
  }
  [[nodiscard]] std::size_t longestChain() const noexcept { return maxChain; }
  [[nodiscard]] std::size_t rehashes() const noexcept { return numRehashes; }
  /// Nodes alive at this moment (stored + handed out via getNode).
  [[nodiscard]] std::size_t allocations() const noexcept {
    return mgr->live();
  }
  /// Total bucket count across all levels.
  [[nodiscard]] std::size_t bucketCount() const noexcept {
    std::size_t total = 0;
    for (const auto& level : levels) {
      total += level.buckets.size();
    }
    return total;
  }

  [[nodiscard]] mem::UniqueTableStats stats() const noexcept {
    mem::UniqueTableStats s;
    s.entries = numNodes;
    s.peakEntries = peakNodes;
    s.lookups = numLookups;
    s.hits = numHits;
    s.collisions = numCollisions;
    s.longestChain = maxChain;
    s.levels = levels.size();
    s.buckets = bucketCount();
    s.rehashes = numRehashes;
    s.memory = mgr->stats();
    return s;
  }

  /// Visits every node currently in the table.
  template <class Visitor> void forEach(Visitor&& visit) const {
    for (const auto& level : levels) {
      for (Node* bucket : level.buckets) {
        for (Node* n = bucket; n != nullptr; n = n->next) {
          visit(n);
        }
      }
    }
  }

private:
  struct Level {
    std::vector<Node*> buckets = std::vector<Node*>(INITIAL_BUCKETS, nullptr);
    std::size_t entries = 0;
  };

  void growLevel(Level& level) {
    std::vector<Node*> next(level.buckets.size() * 2, nullptr);
    for (Node* bucket : level.buckets) {
      while (bucket != nullptr) {
        Node* n = bucket;
        bucket = n->next;
        const std::size_t key = hashNode(*n) & (next.size() - 1);
        n->next = next[key];
        next[key] = n;
      }
    }
    level.buckets = std::move(next);
    ++numRehashes;
  }

  mem::MemoryManager<Node>* mgr;
  std::vector<Level> levels;

  std::size_t numNodes = 0;
  std::size_t peakNodes = 0;
  std::size_t numLookups = 0;
  std::size_t numHits = 0;
  std::size_t numCollisions = 0;
  std::size_t maxChain = 0;
  std::size_t numRehashes = 0;
  std::size_t gcThreshold = GC_INITIAL_THRESHOLD;
};

} // namespace qdd
