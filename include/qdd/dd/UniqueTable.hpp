#pragma once

#include "qdd/common/SpinLock.hpp"
#include "qdd/dd/Node.hpp"
#include "qdd/mem/MemoryManager.hpp"
#include "qdd/mem/StatsRegistry.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qdd {

/// Hash-consing table ensuring canonicity: structurally identical nodes at
/// the same level are represented by a single object, so DD equality reduces
/// to root-pointer comparison (the property paper Sec. III-C relies on for
/// equivalence checking).
///
/// Node storage lives in a `mem::MemoryManager` owned by the package; the
/// table itself only manages per-level slot arrays. Each level is split into
/// `shardCount` *shards*, each a flat open-addressed array of
/// `{node, hash32}` slots probed linearly: the stored 32-bit fingerprint
/// filters almost every mismatching probe without dereferencing the
/// candidate node, so a miss costs sequential scans of one small slot array
/// instead of a pointer chase per chain link. Shards start small and double
/// (rehash) when their load factor reaches 3/4, so table capacity follows
/// the workload instead of being fixed at compile time.
///
/// Sharding is the concurrency story (docs/PARALLELISM.md): the shard index
/// is taken from the *high* bits of the fingerprint (the low bits seed the
/// probe sequence), and in concurrent mode — `shardCount > 1`, used by
/// `QDD_APPLY=parallel` packages — every insert-or-lookup runs under that
/// shard's spinlock. Workers recursing into disjoint parts of the hash
/// space therefore almost never contend (contended acquisitions are counted
/// and exported as `qdd_dd_unique_table_shard_contention`). Serial tables
/// are constructed with one shard and never touch the lock. Canonicity is
/// per (level, shard): a node's fingerprint decides its shard, so two
/// structurally equal candidates always meet in the same shard.
///
/// There are no tombstones, ever: deletion happens only wholesale during
/// garbage collection / shrinking, which rebuilds each touched shard's slot
/// array from the survivors (their stored fingerprints are still valid —
/// GC never mutates a surviving node's children). Garbage collection is
/// reference-count based, must only run at quiescent points (no forked
/// subtask in flight — the package enforces this barrier), and sweeps
/// levels top-down so that cascading releases complete in a single pass
/// (children are always at strictly lower levels).
template <class Node> class UniqueTable {
public:
  // Small initial capacity per shard: typical DDs keep most levels sparse,
  // and busy shards double their slot array on demand (load factor >= 3/4).
  static constexpr std::size_t INITIAL_BUCKETS = 1U << 6U; // per shard
  static constexpr std::size_t GC_INITIAL_THRESHOLD = 131072;
  static constexpr std::size_t MAX_SHARDS = 64;

  /// `shardCount` selects the concurrency mode: 1 (default) builds a serial
  /// table with no locking anywhere; >1 (rounded up to a power of two,
  /// capped at MAX_SHARDS) builds a lock-striped table safe for concurrent
  /// `lookup` calls from pool workers.
  UniqueTable(mem::MemoryManager<Node>& manager, std::size_t nvars,
              std::size_t shards = 1)
      : mgr(&manager), shardCount(roundUpShards(shards)) {
    growLevels(nvars);
  }

  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  /// Grows the table to `nvars` levels. Shrinking without a release callback
  /// is not allowed (nodes at removed levels would leak their children).
  /// Must only be called at quiescent points.
  void resize(std::size_t nvars) {
    assert(nvars >= levels.size() &&
           "shrinking requires a release-children callback");
    growLevels(nvars);
  }

  /// Resizes to `nvars` levels. When shrinking, every node at a removed
  /// level is handed to `releaseChildren` (so the caller can decrement child
  /// references) and returned to the memory manager. The caller is
  /// responsible for ensuring no live edge still points into the removed
  /// levels and for advancing the manager's allocation generation first if
  /// any freed node may still be referenced by a compute-cache entry.
  template <class ReleaseChildren>
  void resize(std::size_t nvars, ReleaseChildren&& releaseChildren) {
    for (std::size_t level = nvars; level < levels.size(); ++level) {
      for (auto& shard : levels[level].shards) {
        for (auto& slot : shard.slots) {
          if (slot.node != nullptr) {
            releaseChildren(slot.node);
            mgr->release(slot.node);
            slot.node = nullptr;
            assert(numNodes > 0);
            --numNodes;
          }
        }
        shard.entries = 0;
      }
    }
    if (nvars < levels.size()) {
      levels.erase(levels.begin() + static_cast<std::ptrdiff_t>(nvars),
                   levels.end());
    }
    growLevels(nvars);
  }

  [[nodiscard]] std::size_t numLevels() const noexcept {
    return levels.size();
  }
  [[nodiscard]] std::size_t numShards() const noexcept { return shardCount; }

  /// Returns a fresh node (generation-stamped by the memory manager) to be
  /// filled by the caller and passed to `lookup`.
  Node* getNode() { return mgr->get(); }

  /// Returns a node to the memory manager (used when `lookup` finds an
  /// existing equivalent node, and during garbage collection).
  void returnNode(Node* n) noexcept { mgr->release(n); }

  /// Looks up `candidate` (fully initialized, level set, children set) in the
  /// table. If an equivalent node exists, `candidate` is recycled and the
  /// existing node returned together with `inserted = false`. Otherwise the
  /// candidate is inserted and returned with `inserted = true`.
  ///
  /// Concurrent tables run the probe under the owning shard's spinlock, so
  /// any number of workers may call this simultaneously; publication of the
  /// returned node's fields is ordered by the lock.
  Node* lookup(Node* candidate, bool& inserted) {
    const auto levelIdx = static_cast<std::size_t>(candidate->v);
    assert(levelIdx < levels.size());
    // The fingerprint seeds the probe sequence (not the full hash), so a
    // GC/rehash rebuild — which only has the fingerprint — reproduces the
    // exact same probe order. Its high bits select the shard.
    const std::uint32_t fp = detail::fold32(hashNode(*candidate));
    Shard& shard = levels[levelIdx].shards[shardIndex(fp)];
    const bool locked = shardCount > 1;
    if (locked && !shard.lock.try_lock()) {
      shard.lock.lock();
      ++shard.contention;
    }
    Node* result = lookupInShard(shard, candidate, fp, inserted);
    if (locked) {
      shard.lock.unlock();
    }
    if (inserted) {
      bumpNodeCount();
    } else {
      // Candidates are never published to compute caches, so recycling
      // them mid-epoch is safe. Released outside the shard lock — the
      // memory manager has its own (optional) lock.
      mgr->release(candidate);
    }
    return result;
  }

  /// Sweeps all levels top-down, removing (and recycling) nodes with zero
  /// reference count. The caller must decrement child references via the
  /// provided callback when a node dies, must have advanced the memory
  /// manager's allocation generation beforehand, and must guarantee
  /// quiescence (no concurrent lookups — the package's fork/join barrier).
  /// Touched shards are rebuilt from the survivors, so the probe sequences
  /// stay tombstone-free. Returns the number of collected nodes.
  template <class ReleaseChildren>
  std::size_t garbageCollect(ReleaseChildren&& releaseChildren) {
    std::size_t collected = 0;
    std::vector<Slot> survivors;
    for (auto levelIdx = levels.size(); levelIdx-- > 0;) {
      for (auto& shard : levels[levelIdx].shards) {
        if (shard.entries == 0) {
          continue;
        }
        std::size_t dead = 0;
        for (const auto& slot : shard.slots) {
          if (slot.node != nullptr && slot.node->ref == 0) {
            ++dead;
          }
        }
        if (dead == 0) {
          continue;
        }
        survivors.clear();
        survivors.reserve(shard.entries - dead);
        for (auto& slot : shard.slots) {
          if (slot.node == nullptr) {
            continue;
          }
          if (slot.node->ref == 0) {
            releaseChildren(slot.node);
            mgr->release(slot.node);
          } else {
            survivors.push_back(slot);
          }
          slot = Slot{};
        }
        for (const auto& slot : survivors) {
          reinsert(shard, slot);
        }
        shard.entries = survivors.size();
        collected += dead;
      }
    }
    numNodes -= collected;
    if (collected < numNodes / 8) {
      gcThreshold *= 2;
    }
    return collected;
  }

  [[nodiscard]] bool possiblyNeedsCollection() const noexcept {
    return numNodes > gcThreshold;
  }

  /// Number of nodes currently stored in the table.
  [[nodiscard]] std::size_t size() const noexcept { return numNodes; }
  [[nodiscard]] std::size_t peakSize() const noexcept { return peakNodes; }
  [[nodiscard]] std::size_t lookups() const noexcept {
    return sumShards([](const Shard& s) { return s.lookups; });
  }
  [[nodiscard]] std::size_t hits() const noexcept {
    return sumShards([](const Shard& s) { return s.hits; });
  }
  [[nodiscard]] std::size_t collisions() const noexcept {
    return sumShards([](const Shard& s) { return s.collisions; });
  }
  [[nodiscard]] std::size_t longestChain() const noexcept {
    std::size_t longest = 0;
    for (const auto& level : levels) {
      for (const auto& shard : level.shards) {
        longest = std::max(longest, shard.maxProbe);
      }
    }
    return longest;
  }
  [[nodiscard]] std::size_t probes() const noexcept {
    return sumShards([](const Shard& s) { return s.probes; });
  }
  [[nodiscard]] std::size_t rehashes() const noexcept {
    return sumShards([](const Shard& s) { return s.rehashes; });
  }
  [[nodiscard]] std::size_t shardContention() const noexcept {
    return sumShards([](const Shard& s) { return s.contention; });
  }
  /// Nodes alive at this moment (stored + handed out via getNode).
  [[nodiscard]] std::size_t allocations() const noexcept {
    return mgr->live();
  }
  /// Total slot count across all levels and shards.
  [[nodiscard]] std::size_t bucketCount() const noexcept {
    return sumShards([](const Shard& s) { return s.slots.size(); });
  }

  /// Aggregates per-shard counters into one snapshot by merging one
  /// per-shard UniqueTableStats at a time via `mem::UniqueTableStats::merge`
  /// — the same order-independent accumulation used across worker packages,
  /// so shard scheduling never changes the reported totals.
  [[nodiscard]] mem::UniqueTableStats stats() const noexcept {
    mem::UniqueTableStats s;
    for (const auto& level : levels) {
      for (const auto& shard : level.shards) {
        mem::UniqueTableStats piece;
        piece.entries = shard.entries;
        piece.lookups = shard.lookups;
        piece.hits = shard.hits;
        piece.collisions = shard.collisions;
        piece.longestChain = shard.maxProbe;
        piece.probes = shard.probes;
        piece.buckets = shard.slots.size();
        piece.rehashes = shard.rehashes;
        piece.shardContention = shard.contention;
        s.merge(piece);
      }
    }
    s.peakEntries = peakNodes;
    s.levels = levels.size();
    s.shards = shardCount;
    s.memory = mgr->stats();
    return s;
  }

  /// Visits every node currently in the table.
  template <class Visitor> void forEach(Visitor&& visit) const {
    for (const auto& level : levels) {
      for (const auto& shard : level.shards) {
        for (const auto& slot : shard.slots) {
          if (slot.node != nullptr) {
            visit(slot.node);
          }
        }
      }
    }
  }

private:
  struct Slot {
    Node* node = nullptr;
    std::uint32_t hash = 0; ///< fold32 fingerprint of the full node hash
  };

  /// One lock stripe of one level. The counters live here — updated under
  /// the shard lock in concurrent mode — so hot-path bookkeeping never
  /// bounces a table-global cache line between workers.
  struct Shard {
    std::vector<Slot> slots = std::vector<Slot>(INITIAL_BUCKETS);
    std::size_t entries = 0;
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t collisions = 0;
    std::size_t maxProbe = 0;
    std::size_t probes = 0;
    std::size_t rehashes = 0;
    std::size_t contention = 0;
    SpinLock lock;
  };

  struct Level {
    explicit Level(std::size_t shardCount) : shards(shardCount) {}
    std::vector<Shard> shards;
  };

  static std::size_t roundUpShards(std::size_t requested) noexcept {
    std::size_t n = 1;
    while (n < requested && n < MAX_SHARDS) {
      n *= 2;
    }
    return n;
  }

  /// High fingerprint bits pick the shard (the low bits seed the in-shard
  /// probe), via the multiplicative range map fp * count / 2^32.
  [[nodiscard]] std::size_t shardIndex(std::uint32_t fp) const noexcept {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(fp) * shardCount) >> 32U);
  }

  void growLevels(std::size_t nvars) {
    levels.reserve(nvars);
    while (levels.size() < nvars) {
      levels.emplace_back(shardCount);
    }
  }

  Node* lookupInShard(Shard& shard, Node* candidate, std::uint32_t fp,
                      bool& inserted) {
    ++shard.lookups;
    // Grow before probing so the insert position found below stays valid.
    if ((shard.entries + 1) * 4 >= shard.slots.size() * 3) {
      growShard(shard);
    }
    const std::size_t mask = shard.slots.size() - 1;
    std::size_t idx = fp & mask;
    std::size_t probe = 1;
    for (;; idx = (idx + 1) & mask, ++probe) {
      Slot& slot = shard.slots[idx];
      if (slot.node == nullptr) {
        break;
      }
      if (slot.hash == fp && nodesStructurallyEqual(*slot.node, *candidate)) {
        ++shard.hits;
        shard.probes += probe;
        shard.maxProbe = std::max(shard.maxProbe, probe);
        inserted = false;
        return slot.node;
      }
    }
    shard.probes += probe;
    shard.maxProbe = std::max(shard.maxProbe, probe);
    if (probe > 1) {
      ++shard.collisions;
    }
    shard.slots[idx] = Slot{candidate, fp};
    ++shard.entries;
    inserted = true;
    return candidate;
  }

  /// Maintains the table-global node count. In concurrent mode the counter
  /// is shared between workers, so it advances with relaxed atomics (exact
  /// ordering is irrelevant — it only feeds GC pressure and stats).
  void bumpNodeCount() noexcept {
    if (shardCount > 1) {
      const std::size_t now = __atomic_add_fetch(&numNodes, 1, __ATOMIC_RELAXED);
      std::size_t peak = __atomic_load_n(&peakNodes, __ATOMIC_RELAXED);
      while (now > peak &&
             !__atomic_compare_exchange_n(&peakNodes, &peak, now, true,
                                          __ATOMIC_RELAXED, __ATOMIC_RELAXED)) {
      }
    } else {
      ++numNodes;
      peakNodes = std::max(peakNodes, numNodes);
    }
  }

  template <class Fn> std::size_t sumShards(Fn&& fn) const noexcept {
    std::size_t total = 0;
    for (const auto& level : levels) {
      for (const auto& shard : level.shards) {
        total += fn(shard);
      }
    }
    return total;
  }

  /// Inserts a slot known not to be present (rehash/GC rebuild): probes to
  /// the first empty slot. Only the fingerprint's low bits seed the probe,
  /// which is fine — the fingerprint already mixes the full hash.
  static void reinsert(Shard& shard, const Slot& slot) noexcept {
    const std::size_t mask = shard.slots.size() - 1;
    std::size_t idx = slot.hash & mask;
    while (shard.slots[idx].node != nullptr) {
      idx = (idx + 1) & mask;
    }
    shard.slots[idx] = slot;
  }

  void growShard(Shard& shard) {
    std::vector<Slot> old = std::move(shard.slots);
    shard.slots.assign(old.size() * 2, Slot{});
    for (const auto& slot : old) {
      if (slot.node != nullptr) {
        reinsert(shard, slot);
      }
    }
    ++shard.rehashes;
  }

  mem::MemoryManager<Node>* mgr;
  std::size_t shardCount;
  std::vector<Level> levels;

  std::size_t numNodes = 0;
  std::size_t peakNodes = 0;
  std::size_t gcThreshold = GC_INITIAL_THRESHOLD;
};

} // namespace qdd
