#pragma once

#include "qdd/complex/ComplexValue.hpp"

#include <array>
#include <cmath>

namespace qdd {

/// Row-major 2x2 single-qubit gate matrix [U00, U01, U10, U11].
using GateMatrix = std::array<ComplexValue, 4>;

/// Row-major 4x4 two-qubit gate matrix.
using TwoQubitGateMatrix = std::array<ComplexValue, 16>;

// --- constant single-qubit gates (paper Fig. 1) ---------------------------

inline constexpr GateMatrix I_MAT{ComplexValue{1., 0.}, ComplexValue{0., 0.},
                                  ComplexValue{0., 0.}, ComplexValue{1., 0.}};

inline constexpr GateMatrix H_MAT{
    ComplexValue{SQRT2_2, 0.}, ComplexValue{SQRT2_2, 0.},
    ComplexValue{SQRT2_2, 0.}, ComplexValue{-SQRT2_2, 0.}};

inline constexpr GateMatrix X_MAT{ComplexValue{0., 0.}, ComplexValue{1., 0.},
                                  ComplexValue{1., 0.}, ComplexValue{0., 0.}};

inline constexpr GateMatrix Y_MAT{ComplexValue{0., 0.}, ComplexValue{0., -1.},
                                  ComplexValue{0., 1.}, ComplexValue{0., 0.}};

inline constexpr GateMatrix Z_MAT{ComplexValue{1., 0.}, ComplexValue{0., 0.},
                                  ComplexValue{0., 0.}, ComplexValue{-1., 0.}};

/// S = P(pi/2) (paper Ex. 10).
inline constexpr GateMatrix S_MAT{ComplexValue{1., 0.}, ComplexValue{0., 0.},
                                  ComplexValue{0., 0.}, ComplexValue{0., 1.}};

inline constexpr GateMatrix SDG_MAT{ComplexValue{1., 0.}, ComplexValue{0., 0.},
                                    ComplexValue{0., 0.},
                                    ComplexValue{0., -1.}};

/// T = P(pi/4) (paper Ex. 10).
inline const GateMatrix T_MAT{ComplexValue{1., 0.}, ComplexValue{0., 0.},
                              ComplexValue{0., 0.},
                              ComplexValue{SQRT2_2, SQRT2_2}};

inline const GateMatrix TDG_MAT{ComplexValue{1., 0.}, ComplexValue{0., 0.},
                                ComplexValue{0., 0.},
                                ComplexValue{SQRT2_2, -SQRT2_2}};

/// sqrt(X).
inline constexpr GateMatrix SX_MAT{
    ComplexValue{0.5, 0.5}, ComplexValue{0.5, -0.5}, ComplexValue{0.5, -0.5},
    ComplexValue{0.5, 0.5}};

inline constexpr GateMatrix SXDG_MAT{
    ComplexValue{0.5, -0.5}, ComplexValue{0.5, 0.5}, ComplexValue{0.5, 0.5},
    ComplexValue{0.5, -0.5}};

/// V = sqrt(X) up to global phase conventions used by RevLib.
inline constexpr GateMatrix V_MAT = SX_MAT;
inline constexpr GateMatrix VDG_MAT = SXDG_MAT;

// --- parameterized single-qubit gates --------------------------------------

/// Phase gate P(theta) = diag(1, e^{i theta}); S = P(pi/2), T = P(pi/4).
inline GateMatrix phaseMatrix(double theta) {
  return {ComplexValue{1., 0.}, ComplexValue{0., 0.}, ComplexValue{0., 0.},
          ComplexValue::fromPolar(1., theta)};
}

/// RX(theta) = exp(-i theta X / 2).
inline GateMatrix rxMatrix(double theta) {
  const double c = std::cos(theta / 2.);
  const double s = std::sin(theta / 2.);
  return {ComplexValue{c, 0.}, ComplexValue{0., -s}, ComplexValue{0., -s},
          ComplexValue{c, 0.}};
}

/// RY(theta) = exp(-i theta Y / 2).
inline GateMatrix ryMatrix(double theta) {
  const double c = std::cos(theta / 2.);
  const double s = std::sin(theta / 2.);
  return {ComplexValue{c, 0.}, ComplexValue{-s, 0.}, ComplexValue{s, 0.},
          ComplexValue{c, 0.}};
}

/// RZ(theta) = exp(-i theta Z / 2) = diag(e^{-i theta/2}, e^{i theta/2}).
inline GateMatrix rzMatrix(double theta) {
  return {ComplexValue::fromPolar(1., -theta / 2.), ComplexValue{0., 0.},
          ComplexValue{0., 0.}, ComplexValue::fromPolar(1., theta / 2.)};
}

/// Generic U3(theta, phi, lambda) as defined by OpenQASM 2.0.
inline GateMatrix u3Matrix(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.);
  const double s = std::sin(theta / 2.);
  return {ComplexValue{c, 0.}, -s * ComplexValue::fromPolar(1., lambda),
          s * ComplexValue::fromPolar(1., phi),
          c * ComplexValue::fromPolar(1., phi + lambda)};
}

/// U2(phi, lambda) = U3(pi/2, phi, lambda).
inline GateMatrix u2Matrix(double phi, double lambda) {
  return u3Matrix(PI / 2., phi, lambda);
}

// --- constant two-qubit gates (row-major, basis |00>,|01>,|10>,|11>) -------

/// iSWAP: swaps the qubits and phases the exchanged excitations by i.
inline constexpr TwoQubitGateMatrix ISWAP_MAT{
    ComplexValue{1., 0.}, ComplexValue{}, ComplexValue{}, ComplexValue{},
    ComplexValue{}, ComplexValue{}, ComplexValue{0., 1.}, ComplexValue{},
    ComplexValue{}, ComplexValue{0., 1.}, ComplexValue{}, ComplexValue{},
    ComplexValue{}, ComplexValue{}, ComplexValue{}, ComplexValue{1., 0.}};

inline constexpr TwoQubitGateMatrix ISWAPDG_MAT{
    ComplexValue{1., 0.}, ComplexValue{}, ComplexValue{}, ComplexValue{},
    ComplexValue{}, ComplexValue{}, ComplexValue{0., -1.}, ComplexValue{},
    ComplexValue{}, ComplexValue{0., -1.}, ComplexValue{}, ComplexValue{},
    ComplexValue{}, ComplexValue{}, ComplexValue{}, ComplexValue{1., 0.}};

/// Double-CNOT dcx(a, b) = CX(a -> b) followed by CX(b -> a), with `a` the
/// more significant matrix index: |a b> -> |b, a xor b>.
inline constexpr TwoQubitGateMatrix DCX_MAT{
    ComplexValue{1., 0.}, ComplexValue{}, ComplexValue{}, ComplexValue{},
    ComplexValue{}, ComplexValue{}, ComplexValue{1., 0.}, ComplexValue{},
    ComplexValue{}, ComplexValue{}, ComplexValue{}, ComplexValue{1., 0.},
    ComplexValue{}, ComplexValue{1., 0.}, ComplexValue{}, ComplexValue{}};

/// Conjugate transpose of a 2x2 gate matrix.
inline GateMatrix adjoint(const GateMatrix& m) {
  return {m[0].conj(), m[2].conj(), m[1].conj(), m[3].conj()};
}

} // namespace qdd
