#pragma once

#include "qdd/dd/Package.hpp"

#include <vector>

namespace qdd {

/// A state DD together with the qubit order it is represented under.
/// `levelOfQubit[q]` gives the DD level that carries logical qubit q; the
/// represented function is recoverable regardless of the order, but the
/// *size* of the diagram can differ exponentially between orders — the
/// paper's canonicity statement is explicitly "with respect to a given
/// variable order" (Sec. III-C).
struct OrderedVector {
  vEdge dd;
  std::vector<Qubit> levelOfQubit;

  /// Amplitude of basis state |q_{n-1} ... q_0> (logical indexing).
  [[nodiscard]] ComplexValue amplitude(Package& pkg,
                                       std::uint64_t logicalIndex) const;
};

/// Wraps a DD in the identity order.
OrderedVector withIdentityOrder(const vEdge& e);

/// Exchanges the qubits at DD levels `level` and `level + 1` (the primitive
/// move of dynamic reordering).
void exchangeAdjacent(Package& pkg, OrderedVector& state, Qubit level);

/// Moves logical qubit q to DD level `target` by adjacent exchanges.
void moveQubitToLevel(Package& pkg, OrderedVector& state, Qubit q,
                      Qubit target);

/// Greedy sifting (Rudell-style): each qubit in turn is moved through all
/// levels and left at the position minimizing the DD size. Returns the
/// number of size-improving moves performed; `state` is updated in place.
std::size_t sift(Package& pkg, OrderedVector& state);

/// A matrix DD with its qubit order (same conventions as OrderedVector);
/// level exchanges conjugate with SWAPs: M -> S M S.
struct OrderedMatrix {
  mEdge dd;
  std::vector<Qubit> levelOfQubit;

  [[nodiscard]] ComplexValue entry(Package& pkg, std::uint64_t logicalRow,
                                   std::uint64_t logicalCol) const;
};

OrderedMatrix withIdentityOrder(const mEdge& e);
/// Span-aware variant: identity-skipping matrix DDs can sit below the
/// operator's top level, so the qubit count cannot be inferred from the root.
OrderedMatrix withIdentityOrder(const mEdge& e, std::size_t n);
void exchangeAdjacent(Package& pkg, OrderedMatrix& state, Qubit level);
void moveQubitToLevel(Package& pkg, OrderedMatrix& state, Qubit q,
                      Qubit target);
std::size_t sift(Package& pkg, OrderedMatrix& state);

} // namespace qdd
