#pragma once

#include "qdd/common/SpinLock.hpp"
#include "qdd/complex/Complex.hpp"
#include "qdd/complex/ComplexValue.hpp"
#include "qdd/dd/Node.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qdd/mem/StatsRegistry.hpp"

namespace qdd {

/// Ordered pair of canonical weights, used as a single compute-table operand
/// by the three-factor weight-product memo (`Package::mulWeights3`). Equality
/// is exact tagged-pointer equality, like `Complex` itself.
struct WeightPair {
  Complex a;
  Complex b;

  friend bool operator==(const WeightPair& x, const WeightPair& y) noexcept {
    return x.a == y.a && x.b == y.b;
  }
};

/// Direct-mapped memoization cache for DD operations (footnote 4 of the
/// paper: "decision diagram packages employ unique tables and compute tables
/// ... to reduce the number of computations necessary").
///
/// Keys are tuples of node pointers and canonical weight pointers; collisions
/// simply overwrite (the cache is advisory). Each entry stores a 32-bit
/// fingerprint of its key, so a slot collision between different keys is
/// rejected on one in-line integer compare instead of field-by-field operand
/// comparison.
///
/// Entries are stamped with the package's garbage-collection generation at
/// insertion time, and every node and weight pointer an entry references
/// carries the generation it was allocated in (`mem::MemoryManager` stamps
/// it). An entry is served only if each referenced pointer's allocation
/// generation is no newer than the entry's stamp — otherwise some pointer
/// was freed (generation `FREED_GENERATION`) or recycled (newer generation)
/// since the entry was written and the entry is rejected as stale. This lets
/// garbage collection preserve the warm cache for surviving operands instead
/// of clearing all tables wholesale. Chunk storage is never returned to the
/// OS, so probing a stale pointer's generation field is memory-safe.
///
/// Concurrency (`setConcurrent`, used by `QDD_APPLY=parallel` packages):
/// the cache stays *lossy* — workers may overwrite each other's entries and
/// a miss is always correct — so all it needs is per-slot atomicity, which
/// a stripe of spinlocks provides (the stripe is selected by the same
/// fingerprint bits as the slot, so one slot always maps to one lock).
/// Results are returned by value (`lookup` copies under the stripe lock)
/// because a pointer into the table could be overwritten by a racing insert
/// the moment the lock is dropped. Counters switch to relaxed atomics;
/// `setEpoch`/`clear` remain quiescent-only operations.
///
/// Freshness epoch shortcut: objects are only ever freed or recycled during
/// garbage collection / shrinking, and both advance the package generation.
/// So an entry written in the *current* generation cannot reference anything
/// freed after it was written, and the whole per-pointer freshness scan (up
/// to six dependent cache-line dereferences) collapses to one integer
/// compare. The package publishes its generation via `setEpoch` after every
/// collection; between collections — the overwhelmingly common case on the
/// hot path — every hit takes the shortcut.
template <class LeftOperand, class RightOperand, class Result,
          std::size_t NBUCKETS = (1U << 16U)>
class ComputeTable {
  static_assert((NBUCKETS & (NBUCKETS - 1)) == 0, "NBUCKETS must be 2^k");

public:
  struct Entry {
    LeftOperand left;
    RightOperand right;
    Result result;
    std::uint32_t gen = 0;
    std::uint32_t hash = 0; ///< fold32 fingerprint of the key
    bool valid = false;
  };

  /// Enables stripe locking for concurrent lookups/inserts. Must be called
  /// at a quiescent point (normally once, at package construction).
  void setConcurrent(bool on) {
    concurrent = on;
    if (on && !stripes) {
      stripes = std::make_unique<SpinLock[]>(NSTRIPES);
    }
  }

  void insert(const LeftOperand& left, const RightOperand& right,
              const Result& result, std::uint32_t generation) {
    const std::uint32_t fp = fingerprint(left, right);
    auto& slot = table[fp & (NBUCKETS - 1)];
    if (concurrent) {
      {
        const std::lock_guard<SpinLock> guard(stripeFor(fp));
        slot = Entry{left, right, result, generation, fp, true};
      }
      __atomic_fetch_add(&numInserts, 1, __ATOMIC_RELAXED);
      return;
    }
    slot = Entry{left, right, result, generation, fp, true};
    ++numInserts;
  }

  /// On hit, copies the cached result into `out` and returns true. Entries
  /// whose operands or result reference pointers allocated after the entry
  /// was written are rejected as stale. Copy-out (rather than a pointer
  /// into the table) keeps hits valid even if a racing insert overwrites
  /// the slot immediately afterwards.
  bool lookup(const LeftOperand& left, const RightOperand& right,
              Result& out) {
    const std::uint32_t fp = fingerprint(left, right);
    const auto& slot = table[fp & (NBUCKETS - 1)];
    if (concurrent) {
      __atomic_fetch_add(&numLookups, 1, __ATOMIC_RELAXED);
      const std::lock_guard<SpinLock> guard(stripeFor(fp));
      return lookupSlot(slot, left, right, fp, out);
    }
    ++numLookups;
    return lookupSlot(slot, left, right, fp, out);
  }

  /// Hints the slot for `(left, right)` into cache. The recursive operations
  /// know the keys of their child calls before descending; prefetching the
  /// slot overlaps the (random-access) table load with the recursion.
  void prefetch(const LeftOperand& left, const RightOperand& right) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&table[fingerprint(left, right) & (NBUCKETS - 1)]);
#else
    (void)left;
    (void)right;
#endif
  }

  /// Publishes the package's current allocation generation (call after every
  /// garbage collection / shrink). Entries stamped with this exact
  /// generation skip the per-pointer freshness scan on lookup.
  void setEpoch(std::uint32_t generation) noexcept { epoch = generation; }

  void clear() {
    for (auto& slot : table) {
      slot.valid = false;
    }
  }

  [[nodiscard]] std::size_t lookups() const noexcept { return numLookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return numHits; }
  [[nodiscard]] std::size_t inserts() const noexcept { return numInserts; }
  [[nodiscard]] std::size_t staleRejections() const noexcept {
    return numStaleRejections;
  }
  [[nodiscard]] double hitRatio() const noexcept {
    return numLookups == 0
               ? 0.
               : static_cast<double>(numHits) / static_cast<double>(numLookups);
  }

  [[nodiscard]] mem::ComputeTableStats stats(const std::string& name) const {
    mem::ComputeTableStats s;
    s.name = name;
    s.lookups = numLookups;
    s.hits = numHits;
    s.inserts = numInserts;
    s.staleRejections = numStaleRejections;
    return s;
  }

private:
  static constexpr std::size_t NSTRIPES = 256;

  /// Stripe for a fingerprint. The stripe index is a pure function of the
  /// slot index (low fingerprint bits), so every access to one slot always
  /// takes the same lock.
  [[nodiscard]] SpinLock& stripeFor(std::uint32_t fp) const noexcept {
    return stripes[fp & (NSTRIPES - 1)];
  }

  void bump(std::size_t& counter) noexcept {
    if (concurrent) {
      __atomic_fetch_add(&counter, 1, __ATOMIC_RELAXED);
    } else {
      ++counter;
    }
  }

  bool lookupSlot(const Entry& slot, const LeftOperand& left,
                  const RightOperand& right, std::uint32_t fp, Result& out) {
    if (!slot.valid || slot.hash != fp || !(slot.left == left) ||
        !(slot.right == right)) {
      return false;
    }
    if (slot.gen != epoch &&
        (!isFresh(slot.left, slot.gen) || !isFresh(slot.right, slot.gen) ||
         !isFresh(slot.result, slot.gen))) {
      bump(numStaleRejections);
      return false;
    }
    bump(numHits);
    out = slot.result;
    return true;
  }

  static std::size_t hashOperand(const void* p) noexcept {
    return detail::ptrHash(p);
  }
  template <class Node>
  static std::size_t hashOperand(const Edge<Node>& e) noexcept {
    std::size_t h = detail::ptrHash(e.p);
    h = detail::combineHash(h, detail::ptrHash(e.w.r));
    h = detail::combineHash(h, detail::ptrHash(e.w.i));
    return h;
  }
  static std::size_t hashOperand(const Complex& w) noexcept {
    return detail::combineHash(detail::ptrHash(w.r), detail::ptrHash(w.i));
  }
  static std::size_t hashOperand(const WeightPair& p) noexcept {
    return detail::combineHash(hashOperand(p.a), hashOperand(p.b));
  }

  static std::uint32_t fingerprint(const LeftOperand& left,
                                   const RightOperand& right) noexcept {
    return detail::fold32(
        detail::combineHash(hashOperand(left), hashOperand(right)));
  }

  // Freshness: a pointer is fresh w.r.t. an entry if it was allocated no
  // later than the entry was written. Freed pointers carry
  // mem::FREED_GENERATION (the maximum value) and thus always fail.
  // Terminal nodes and immortal weight entries keep generation 0 and always
  // pass. Value-type results carry no pointers and are always fresh.
  static bool isFresh(const ComplexValue& /*v*/, std::uint32_t /*g*/) noexcept {
    return true;
  }
  static bool isFresh(const Complex& w, std::uint32_t gen) noexcept {
    return Complex::aligned(w.r)->gen <= gen &&
           Complex::aligned(w.i)->gen <= gen;
  }
  static bool isFresh(const WeightPair& p, std::uint32_t gen) noexcept {
    return isFresh(p.a, gen) && isFresh(p.b, gen);
  }
  template <class Node>
  static bool isFresh(const Node* p, std::uint32_t gen) noexcept {
    return p->gen <= gen;
  }
  template <class Node>
  static bool isFresh(const Edge<Node>& e, std::uint32_t gen) noexcept {
    return isFresh(e.p, gen) && isFresh(e.w, gen);
  }

  // Heap-allocated: at 2^16 slots an Entry table is several MiB, far too
  // large for automatic storage inside a Package object.
  std::vector<Entry> table = std::vector<Entry>(NBUCKETS);
  std::uint32_t epoch = 0;
  std::size_t numLookups = 0;
  std::size_t numHits = 0;
  std::size_t numInserts = 0;
  std::size_t numStaleRejections = 0;
  bool concurrent = false;
  std::unique_ptr<SpinLock[]> stripes;
};

} // namespace qdd
