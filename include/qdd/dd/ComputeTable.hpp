#pragma once

#include "qdd/dd/Node.hpp"

#include <cstddef>
#include <vector>

namespace qdd {

/// Direct-mapped memoization cache for DD operations (footnote 4 of the
/// paper: "decision diagram packages employ unique tables and compute tables
/// ... to reduce the number of computations necessary").
///
/// Keys are tuples of node pointers and canonical weight pointers; collisions
/// simply overwrite (the cache is advisory). The table must be cleared
/// whenever nodes may be recycled (after garbage collection).
template <class LeftOperand, class RightOperand, class Result,
          std::size_t NBUCKETS = (1U << 16U)>
class ComputeTable {
  static_assert((NBUCKETS & (NBUCKETS - 1)) == 0, "NBUCKETS must be 2^k");

public:
  struct Entry {
    LeftOperand left;
    RightOperand right;
    Result result;
    bool valid = false;
  };

  void insert(const LeftOperand& left, const RightOperand& right,
              const Result& result) {
    auto& slot = table[slotOf(left, right)];
    slot = Entry{left, right, result, true};
  }

  /// Returns a pointer to the cached result or nullptr on miss.
  const Result* lookup(const LeftOperand& left, const RightOperand& right) {
    ++numLookups;
    const auto& slot = table[slotOf(left, right)];
    if (!slot.valid || !(slot.left == left) || !(slot.right == right)) {
      return nullptr;
    }
    ++numHits;
    return &slot.result;
  }

  void clear() {
    for (auto& slot : table) {
      slot.valid = false;
    }
  }

  [[nodiscard]] std::size_t lookups() const noexcept { return numLookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return numHits; }
  [[nodiscard]] double hitRatio() const noexcept {
    return numLookups == 0
               ? 0.
               : static_cast<double>(numHits) / static_cast<double>(numLookups);
  }

private:
  static std::size_t hashOperand(const void* p) noexcept {
    return detail::ptrHash(p);
  }
  template <class Node>
  static std::size_t hashOperand(const Edge<Node>& e) noexcept {
    std::size_t h = detail::ptrHash(e.p);
    h = detail::combineHash(h, detail::ptrHash(e.w.r));
    h = detail::combineHash(h, detail::ptrHash(e.w.i));
    return h;
  }

  std::size_t slotOf(const LeftOperand& left,
                     const RightOperand& right) const noexcept {
    const std::size_t h =
        detail::combineHash(hashOperand(left), hashOperand(right));
    return h & (NBUCKETS - 1);
  }

  // Heap-allocated: at 2^16 slots an Entry table is several MiB, far too
  // large for automatic storage inside a Package object.
  std::vector<Entry> table = std::vector<Entry>(NBUCKETS);
  std::size_t numLookups = 0;
  std::size_t numHits = 0;
};

} // namespace qdd
