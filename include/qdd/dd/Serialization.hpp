#pragma once

#include "qdd/dd/Package.hpp"

#include <iosfwd>
#include <string>

namespace qdd {

/// Text serialization of decision diagrams.
///
/// Format (line-oriented, human-readable, stable across versions):
///
///   qdd-vector 1            | qdd-matrix 1         (header: kind + version)
///   root <id> <re> <im>                            (root node and weight)
///   node <id> <level> {<child> <re> <im>}^radix    (one line per node,
///                                                   children before parents;
///                                                   child -1 = terminal,
///                                                   weight 0 0 = 0-stub)
///   end
///
/// Deserialization rebuilds the DD through the package's normalizing node
/// constructors, so a round trip yields the canonical representative of the
/// serialized function (pointer-identical to the original within the same
/// package).
void serialize(const vEdge& e, std::ostream& os);
void serialize(const mEdge& e, std::ostream& os);
std::string serializeToString(const vEdge& e);
std::string serializeToString(const mEdge& e);

vEdge deserializeVector(Package& pkg, std::istream& is);
mEdge deserializeMatrix(Package& pkg, std::istream& is);
vEdge deserializeVectorFromString(Package& pkg, const std::string& text);
mEdge deserializeMatrixFromString(Package& pkg, const std::string& text);

} // namespace qdd
