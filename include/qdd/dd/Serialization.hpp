#pragma once

#include "qdd/dd/Package.hpp"

#include <iosfwd>
#include <string>

namespace qdd {

/// Text serialization of decision diagrams.
///
/// Format (line-oriented, human-readable, stable across versions):
///
///   qdd-vector 1            | qdd-matrix 2         (header: kind + version)
///   span <n>                                       (matrix v2 only: qubit
///                                                   span of the root edge)
///   root <id> <re> <im>                            (root node and weight)
///   node <id> <level> {<child> <re> <im>}^radix    (one line per node,
///                                                   children before parents;
///                                                   child -1 = terminal,
///                                                   weight 0 0 = 0-stub)
///   end
///
/// Matrix version 2 (identity-skipping, arXiv:2406.11959) allows a child to
/// sit any number of levels below its parent — the gap is implicit identity —
/// and a non-zero terminal child of a node above level 0 denotes the identity
/// on all remaining levels. Version 1 files (fully materialized towers) are
/// still read; deserializing them into a Strip-mode package strips the towers
/// on the fly, and deserializing a v2 file into a Materialize-mode package
/// re-expands the skipped levels explicitly (using the recorded span to pad
/// above the root).
///
/// Deserialization rebuilds the DD through the package's normalizing node
/// constructors, so a round trip yields the canonical representative of the
/// serialized function (pointer-identical to the original within the same
/// package and identity mode).
void serialize(const vEdge& e, std::ostream& os);
void serialize(const mEdge& e, std::ostream& os);
/// Matrix serialization with an explicit qubit span (>= the root level + 1).
/// Required to round-trip skipped levels above the root faithfully.
void serialize(const mEdge& e, std::ostream& os, std::size_t span);
std::string serializeToString(const vEdge& e);
std::string serializeToString(const mEdge& e);
std::string serializeToString(const mEdge& e, std::size_t span);

vEdge deserializeVector(Package& pkg, std::istream& is);
mEdge deserializeMatrix(Package& pkg, std::istream& is);
vEdge deserializeVectorFromString(Package& pkg, const std::string& text);
mEdge deserializeMatrixFromString(Package& pkg, const std::string& text);

} // namespace qdd
