#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>

namespace qdd {

/// Fork/join engine the DD package uses to run independent child subproblems
/// of `multiply`/`add` in parallel (docs/PARALLELISM.md, "Intra-circuit
/// parallelism"). The interface lives in the dd layer so the package never
/// depends on qdd::exec; the production implementation
/// (`exec::PoolForker`) forwards to `exec::ThreadPool::fork`/`waitAndWork`,
/// and tests substitute deterministic inline doubles.
class TaskForker {
public:
  virtual ~TaskForker() = default;

  /// Runs all `n` tasks and returns only after every one of them has
  /// completed ("fork and join"). Tasks are independent: they may execute on
  /// any thread, in any order, concurrently with each other and with the
  /// caller. Implementations must rethrow the first exception a task threw
  /// (after all tasks finished), and must support reentrant calls — forked
  /// tasks fork again while their parent group is still being joined.
  virtual void runAll(std::function<void()>* tasks, std::size_t n) = 0;

  /// Polled by the package at every fork point; returning true makes the
  /// in-flight operation throw OperationCancelled. The default never
  /// cancels.
  [[nodiscard]] virtual bool cancelled() const noexcept { return false; }
};

/// Thrown out of a DD operation when the installed TaskForker reports
/// cancellation mid-computation. The package's tables remain consistent —
/// partial results are ordinary unreferenced canonical nodes, reclaimed by
/// the next garbage collection.
struct OperationCancelled : std::runtime_error {
  OperationCancelled() : std::runtime_error("dd operation cancelled") {}
};

} // namespace qdd
