#pragma once

// qdd::net — incremental HTTP/1.1 request parsing. One state machine shared
// by both network paths: the reactor feeds it bytes as they arrive on a
// non-blocking socket (Reactor.hpp), and the blocking thread-per-connection
// path wraps it in a recv() loop (service::readHttpRequest). Keeping a
// single parser means both `--net` modes accept byte-for-byte the same
// request language.
//
// The parser is pull-based and buffer-owned: callers append received bytes
// to a std::string and call tryParseHttpRequest until it stops returning
// NeedMore. On Ok the consumed bytes are erased from the front of the
// buffer (pipelined follow-up requests stay behind for the next call).

#include "qdd/service/Http.hpp"

#include <cstddef>
#include <cstdint>
#include <string>

namespace qdd::net {

/// Result of one incremental parse attempt.
enum class ParseStatus : std::uint8_t {
  NeedMore,    ///< incomplete request; append more bytes and retry
  Ok,          ///< one request parsed and consumed from the buffer
  Malformed,   ///< unparseable request line/headers -> 400, close
  TooLarge,    ///< headers over 16 KiB or Content-Length over the cap -> 413
  Unsupported, ///< Transfer-Encoding etc. -> 501, close
};

/// Hard ceiling on the request line + headers (terminator included).
inline constexpr std::size_t MAX_HTTP_HEADER_BYTES = 16U * 1024U;

/// Attempts to parse one complete request from the front of `buffer`.
/// On Ok, `out` is filled and the request's bytes are erased from `buffer`;
/// on any other status the buffer is left untouched. `maxBodyBytes` bounds
/// the declared Content-Length — the body of an over-limit request is never
/// waited for (TooLarge returns as soon as the headers are complete).
ParseStatus tryParseHttpRequest(std::string& buffer,
                                service::HttpRequest& out,
                                std::size_t maxBodyBytes);

} // namespace qdd::net
