#pragma once

// qdd::net — the event-driven network core. One reactor thread owns every
// socket: it accepts, reads into per-connection buffers, runs the
// incremental HTTP parse state machine (HttpParser.hpp), and only hands
// *complete* requests to the dispatch callback — which is expected to
// return immediately after queueing the work on a thread pool. The worker
// answers by calling complete(token, bytes): when the connection's write
// buffer is empty the bytes are sent directly on the worker thread (a
// single non-blocking send keeps the reactor wakeup off the response
// latency path); whatever the socket did not take — and the bookkeeping
// that must run on the reactor thread (clearing the in-flight flag,
// parsing pipelined input, arming EPOLLOUT, closing) — goes through the
// completion queue. The worker never blocks on a socket, so slow readers,
// silent keep-alive clients, and slow consumers of large responses never
// pin a worker thread — they cost one buffered connection, reclaimed by
// the idle timeout.
//
// Backends: epoll (edge-triggered; Linux) with a poll(2) level-triggered
// fallback selected at runtime — both drive the same connection state
// machine (always read to EAGAIN, write to EAGAIN, EPOLLOUT only while the
// write buffer is non-empty), so the backends are behaviorally identical.
//
// Concurrency contract: the read side (in buffer, parse state, busy flag,
// activity stamp, epoll interest) is reactor-thread-only. The write side
// (out buffer, closeAfterWrite, the fd's send/close) is shared with
// complete()'s direct-write fast path and guarded by the per-connection
// ioMutex; `alive` (same guard) fences workers off a connection the
// reactor has destroyed. The connection registry itself is guarded by
// connsMutex. Tokens identify connections across the handoff; a
// completion for a connection that has since closed is silently dropped
// (tokens are never reused).

#include "qdd/net/HttpParser.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qdd::net {

enum class Backend : std::uint8_t { Epoll, Poll };

struct ReactorOptions {
  /// Requested backend; epoll falls back to poll when unavailable (the
  /// effective choice is reported by Reactor::backend()).
  Backend backend = Backend::Epoll;
  /// Connections idle (no read/write activity, no request in flight) longer
  /// than this are closed. <= 0 disables the timeout.
  int idleTimeoutMs = 30000;
  /// Bounds the declared Content-Length (parser answers TooLarge beyond).
  std::size_t maxBodyBytes = 1U << 20U;
};

class Reactor {
public:
  /// Called on the reactor thread for every complete request. Must not
  /// block: queue the work and return. Eventually complete(token, ...) must
  /// be called exactly once per dispatch (from any thread).
  using Dispatch =
      std::function<void(std::uint64_t token, service::HttpRequest&&)>;
  /// Maps a transport-level parse failure to the serialized response bytes
  /// sent before the connection is closed (also the metrics hook).
  using ParseErrorResponder = std::function<std::string(ParseStatus)>;

  Reactor(ReactorOptions options, Dispatch dispatch,
          ParseErrorResponder onParseError);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Starts the event loop on `listenFd` (already bound + listening; stays
  /// owned by the caller). Throws std::runtime_error when no backend could
  /// be set up.
  void start(int listenFd);

  /// Delivers serialized response bytes for the connection identified by
  /// `token`: sends directly on the calling thread when the connection has
  /// no backlog (never blocking), queues the remainder for the reactor's
  /// writeout, and wakes the event loop. `closeAfter` closes the
  /// connection once the bytes are flushed. Thread-safe; a no-op after
  /// stop() or for already-closed connections.
  void complete(std::uint64_t token, std::string bytes, bool closeAfter);

  /// Closes every connection and joins the reactor thread. Idempotent.
  /// In-flight dispatches may still call complete() afterwards; those
  /// completions are dropped.
  void stop();

  /// Effective backend after any epoll->poll fallback (valid after start).
  [[nodiscard]] Backend backend() const noexcept { return effectiveBackend; }

  [[nodiscard]] std::size_t openConnections() const noexcept {
    return openCount.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t acceptedTotal() const noexcept {
    return acceptedN.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t idleClosedTotal() const noexcept {
    return idleClosedN.load(std::memory_order_relaxed);
  }

private:
  struct Conn {
    int fd = -1;
    // reactor thread only:
    std::string in;      ///< received bytes not yet consumed by the parser
    bool busy = false;   ///< one dispatched request in flight
    bool wantWrite = false; ///< EPOLLOUT currently registered
    std::int64_t lastActivityMs = 0;
    // shared with complete()'s direct-write fast path:
    std::mutex ioMutex;  ///< guards out/closeAfterWrite/alive and fd writes
    std::string out;     ///< serialized response bytes not yet written
    bool closeAfterWrite = false;
    bool alive = true;   ///< false once the reactor closed the fd
  };

  /// The bytes were already placed on the connection (or written) by
  /// complete(); the reactor only has to run the post-response bookkeeping.
  struct Completion {
    std::uint64_t token = 0;
  };

  void loop();
  void acceptReady();
  void readable(std::uint64_t token);
  void writable(std::uint64_t token);
  void maybeParse(std::uint64_t token);
  void flushWrite(std::uint64_t token);
  void updateWriteInterest(std::uint64_t token);
  void destroy(std::uint64_t token);
  void drainCompletions();
  void sweepIdle();
  void wake();
  [[nodiscard]] std::shared_ptr<Conn> lookup(std::uint64_t token);

  [[nodiscard]] static std::int64_t nowMs();

  const ReactorOptions options;
  const Dispatch dispatch;
  const ParseErrorResponder onParseError;

  Backend effectiveBackend = Backend::Poll;
  int epollFd = -1;
  int listenFd = -1;
  int wakeRead = -1;
  int wakeWrite = -1;

  std::thread thread;
  std::atomic<bool> stopping{false};

  mutable std::mutex connsMutex; ///< guards the registry map itself
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns;
  std::uint64_t nextToken = 2; ///< 0 = wake pipe, 1 = listen socket
  std::int64_t lastSweepMs = 0;

  std::mutex completionMutex;
  std::vector<Completion> completions;
  bool wakePending = false; ///< guarded by completionMutex

  std::atomic<std::size_t> openCount{0};
  std::atomic<std::uint64_t> acceptedN{0};
  std::atomic<std::uint64_t> idleClosedN{0};
};

} // namespace qdd::net
