#pragma once

#include "qdd/dd/Package.hpp"
#include "qdd/ir/QuantumComputation.hpp"

#include <cstdint>
#include <vector>

namespace qdd::synth {

/// Transformation-based synthesis of reversible functions (the classic
/// Miller-Maslov-Dueck algorithm) — covering the third DD design task the
/// paper's abstract lists alongside simulation and verification
/// ("decision diagrams provide a promising basis for many design tasks such
/// as simulation, synthesis, verification"; refs [17]-[19]).
///
/// Input: a permutation over the 2^n basis states (truth table of a
/// reversible function); output: a cascade of NOT / CNOT / multi-controlled
/// Toffoli gates realizing it exactly. The result is verified against the
/// specification with canonical decision diagrams (see
/// buildPermutationDD / test_synthesis).
ir::QuantumComputation
synthesizePermutation(const std::vector<std::uint64_t>& permutation);

/// Builds the DD of the permutation matrix P with P|x> = |permutation[x]>.
/// Used as the golden specification when verifying synthesis results.
mEdge buildPermutationDD(Package& pkg,
                         const std::vector<std::uint64_t>& permutation);

/// Statistics of a synthesized cascade.
struct SynthesisStats {
  std::size_t gates = 0;       ///< total gates in the cascade
  std::size_t maxControls = 0; ///< largest control count of any gate
};
SynthesisStats analyze(const ir::QuantumComputation& qc);

} // namespace qdd::synth
