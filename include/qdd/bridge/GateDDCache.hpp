#pragma once

#include "qdd/common/Definitions.hpp"
#include "qdd/common/FixedPointAngle.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/ir/OpType.hpp"
#include "qdd/ir/Operation.hpp"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace qdd::bridge {

/// Cache of gate matrix DDs, keyed by (operation kind, canonicalized
/// parameters, controls, targets, qubit count, inverse flag), so the
/// thousands of repeated H/CX/P(theta) gates of a circuit build their matrix
/// DD once instead of per application. Used by the matrix-multiply apply path
/// (and by the fast path for the two-qubit unitaries it does not cover) and
/// shared across a whole alternating equivalence-checking run, which applies
/// the same gate set from both sides.
///
/// Rotation angles are keyed as fixed-point values modulo 4*pi (the shared
/// period of every parameterized standard gate), so key equality and hashing
/// are exact integer operations: the reduction can only merge keys whose
/// matrices agree to ~1e-11 rad — never distinct gates — and, unlike an
/// fmod-based canonicalization, angles straddling the 4*pi boundary wrap to
/// the same unit instead of opposite ends of the domain.
///
/// Cached edges are reference-held so they survive garbage collection; the
/// cache must therefore be cleared (or destroyed) before Package::shrink
/// releases levels its entries may live on. When the entry cap is reached the
/// cache is flushed wholesale — the typical working set (distinct gates of a
/// circuit) is far below the cap, so a flush signals key churn, not capacity
/// pressure (see `flushes()`).
class GateDDCache {
public:
  explicit GateDDCache(Package& pkg, std::size_t maxEntries = 4096)
      : pkg(pkg), maxEntries(maxEntries) {}
  ~GateDDCache() { clear(); }

  GateDDCache(const GateDDCache&) = delete;
  GateDDCache& operator=(const GateDDCache&) = delete;

  /// DD of `op` on an `n`-qubit system (bridge::getDD through the cache).
  /// Compound and non-standard operations are passed through uncached.
  mEdge getDD(const ir::Operation& op, std::size_t n);
  /// DD of the inverse of `op` (cached under its own key, so alternating
  /// verification caches both directions independently).
  mEdge getInverseDD(const ir::Operation& op, std::size_t n);

  /// Releases every pinned entry and empties the cache.
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return entries.size(); }
  [[nodiscard]] std::size_t lookups() const noexcept { return numLookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return numHits; }
  [[nodiscard]] std::size_t flushes() const noexcept { return numFlushes; }
  [[nodiscard]] double hitRatio() const noexcept {
    return numLookups == 0 ? 0.
                           : static_cast<double>(numHits) /
                                 static_cast<double>(numLookups);
  }

private:
  struct Key {
    ir::OpType type = ir::OpType::None;
    std::uint32_t n = 0;
    bool inverse = false;
    std::vector<Qubit> targets;
    QubitControls controls; ///< sorted
    std::vector<FixedPointAngle> params; ///< angles, fixed-point mod 4*pi

    friend bool operator==(const Key& a, const Key& b) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  mEdge lookupOrBuild(const ir::Operation& op, std::size_t n, bool inverse);

  Package& pkg;
  std::size_t maxEntries;
  std::unordered_map<Key, mEdge, KeyHash> entries;
  std::size_t numLookups = 0;
  std::size_t numHits = 0;
  std::size_t numFlushes = 0;
};

} // namespace qdd::bridge
