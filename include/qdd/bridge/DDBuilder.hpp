#pragma once

#include "qdd/dd/Package.hpp"
#include "qdd/ir/QuantumComputation.hpp"

namespace qdd::bridge {

/// Builds the DD of the unitary matrix realized by `op` on an `n`-qubit
/// system. Throws std::invalid_argument for non-unitary operations
/// (measure/reset/classic-controlled); barriers yield the identity.
mEdge getDD(const ir::Operation& op, std::size_t n, Package& pkg);

/// DD of the inverse (conjugate transpose) of `op`.
mEdge getInverseDD(const ir::Operation& op, std::size_t n, Package& pkg);

/// Builds the full system matrix U = U_{m-1} ... U_0 of a purely unitary
/// circuit (paper Sec. II: "the functionality of a given circuit G can be
/// obtained as a unitary system matrix"). Reference counts are managed
/// internally; the returned edge is NOT reference-held.
mEdge buildFunctionality(const ir::QuantumComputation& qc, Package& pkg);

/// Statistics-collecting variant: reports the maximum number of nodes of
/// any intermediate DD (used to reproduce Ex. 12's node-count comparison).
struct BuildStats {
  std::size_t maxNodes = 0;     ///< peak intermediate DD size
  std::size_t finalNodes = 0;   ///< size of the final DD
  std::size_t appliedGates = 0; ///< number of gate DDs multiplied
};
mEdge buildFunctionality(const ir::QuantumComputation& qc, Package& pkg,
                         BuildStats& stats);

/// Simulates a purely unitary circuit on the given initial state and returns
/// the final state DD (reference counts managed internally; result not
/// reference-held). For circuits with measurements/resets use
/// sim::SimulationSession.
vEdge simulate(const ir::QuantumComputation& qc, const vEdge& initial,
               Package& pkg);
vEdge simulate(const ir::QuantumComputation& qc, const vEdge& initial,
               Package& pkg, BuildStats& stats);

} // namespace qdd::bridge
