#pragma once

#include "qdd/dd/Package.hpp"
#include "qdd/ir/QuantumComputation.hpp"

#include <cstdint>
#include <string>

namespace qdd::bridge {

class GateDDCache;

/// Which engine applies gates to state DDs.
enum class ApplyMode : std::uint8_t {
  /// Direct Package::applyGate kernels for (multi-)controlled single-qubit
  /// gates and SWAP; the gate-DD cache serves the two-qubit unitaries the
  /// kernels do not cover. The default.
  Fast,
  /// Matrix-DD multiply for every gate, but gate DDs come from the
  /// GateDDCache instead of being rebuilt per application.
  Cached,
  /// The original makeGateDD + multiply path, bypassing kernels and cache —
  /// the ablation baseline benches and tests compare against.
  General,
  /// Intra-circuit parallelism (docs/PARALLELISM.md): gates go through the
  /// cached matrix-DD multiply path (like Cached — the in-place kernels have
  /// nothing to fork), and `QDD_APPLY=parallel` additionally makes every
  /// newly constructed Package concurrent (sharded tables), so a forker
  /// attached via exec::attachSharedForker runs multiply/add subproblems on
  /// the shared pool.
  Parallel,
};

[[nodiscard]] std::string toString(ApplyMode mode);
/// Parses the QDD_APPLY environment variable ("fast" | "cached" |
/// "general" | "parallel"); unset or unrecognized values yield
/// ApplyMode::Fast.
[[nodiscard]] ApplyMode applyModeFromEnv();
/// Process-wide apply mode: initialized from QDD_APPLY on first use,
/// overridable for ablation runs.
[[nodiscard]] ApplyMode globalApplyMode();
void setGlobalApplyMode(ApplyMode mode);

/// Builds the DD of the unitary matrix realized by `op` on an `n`-qubit
/// system. Throws std::invalid_argument for non-unitary operations
/// (measure/reset/classic-controlled); barriers yield the identity.
mEdge getDD(const ir::Operation& op, std::size_t n, Package& pkg);

/// DD of the inverse (conjugate transpose) of `op`.
mEdge getInverseDD(const ir::Operation& op, std::size_t n, Package& pkg);

/// Builds the full system matrix U = U_{m-1} ... U_0 of a purely unitary
/// circuit (paper Sec. II: "the functionality of a given circuit G can be
/// obtained as a unitary system matrix"). Reference counts are managed
/// internally; the returned edge is NOT reference-held.
mEdge buildFunctionality(const ir::QuantumComputation& qc, Package& pkg);

/// Statistics-collecting variant: reports the maximum number of nodes of
/// any intermediate DD (used to reproduce Ex. 12's node-count comparison).
struct BuildStats {
  std::size_t maxNodes = 0;     ///< peak intermediate DD size
  std::size_t finalNodes = 0;   ///< size of the final DD
  std::size_t appliedGates = 0; ///< number of gate DDs multiplied
};
mEdge buildFunctionality(const ir::QuantumComputation& qc, Package& pkg,
                         BuildStats& stats);

/// Applies one unitary operation to a state DD according to `mode` (the
/// global mode by default): the direct applyGate/applySwap kernels where they
/// exist, the gate-DD cache (when one is passed) plus the general multiply
/// for the rest. Barriers return the state unchanged; compound operations
/// fold over their members. Throws std::invalid_argument for non-unitary
/// operations. The returned edge is NOT reference-held.
vEdge applyOperation(const ir::Operation& op, std::size_t n,
                     const vEdge& state, Package& pkg,
                     GateDDCache* cache = nullptr);
vEdge applyOperation(const ir::Operation& op, std::size_t n,
                     const vEdge& state, Package& pkg, ApplyMode mode,
                     GateDDCache* cache = nullptr);

/// Simulates a purely unitary circuit on the given initial state and returns
/// the final state DD (reference counts managed internally; result not
/// reference-held). Gates are applied through `applyOperation` under the
/// global apply mode. For circuits with measurements/resets use
/// sim::SimulationSession.
vEdge simulate(const ir::QuantumComputation& qc, const vEdge& initial,
               Package& pkg);
vEdge simulate(const ir::QuantumComputation& qc, const vEdge& initial,
               Package& pkg, BuildStats& stats);

} // namespace qdd::bridge
