#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace qdd {

/// Canonical storage for the (non-negative) real parts of edge weights.
///
/// Every distinct real value occurring as the real or imaginary part of an
/// edge weight is stored exactly once (up to a configurable tolerance).
/// Canonicity of decision diagrams then reduces weight comparison to pointer
/// comparison. Negative values are represented by tagging the least
/// significant bit of the `Entry` pointer (see Complex.hpp); the table itself
/// only ever stores values >= 0.
///
/// This is the lookup-table design of Zulehner, Hillmich, Wille:
/// "How to efficiently handle complex values? Implementing decision diagrams
/// for quantum computing" (ICCAD 2019) — reference [14] of the paper.
class RealTable {
public:
  struct Entry {
    double value = 0.;
    Entry* next = nullptr;     ///< bucket chain
    std::uint32_t ref = 0;     ///< reference count (from edges of live nodes)
    bool immortal = false;     ///< never garbage collected (0, 1, 1/sqrt2)

    Entry() = default;
    explicit Entry(double v) : value(v) {}
  };

  /// Default tolerance used for value identification.
  static constexpr double DEFAULT_TOLERANCE = 1e-10;

  explicit RealTable(double tolerance = DEFAULT_TOLERANCE);
  ~RealTable();

  RealTable(const RealTable&) = delete;
  RealTable& operator=(const RealTable&) = delete;

  /// Shared immortal entries. These are statics so that `Complex::zero` and
  /// `Complex::one` can be constant-initialized and compared by pointer
  /// across packages.
  static Entry& zero() noexcept { return zeroEntry; }
  static Entry& one() noexcept { return oneEntry; }
  static Entry& sqrt2over2() noexcept { return sqrt2Entry; }

  /// Looks up `val` (must be >= 0) and returns the canonical entry,
  /// inserting a new one if no entry lies within the tolerance.
  Entry* lookup(double val);

  [[nodiscard]] double tolerance() const noexcept { return tol; }
  void setTolerance(double t) noexcept { tol = t; }

  /// Number of (non-immortal) live entries.
  [[nodiscard]] std::size_t size() const noexcept { return numEntries; }
  [[nodiscard]] std::size_t peakSize() const noexcept { return peakEntries; }
  [[nodiscard]] std::size_t lookups() const noexcept { return numLookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return numHits; }
  [[nodiscard]] std::size_t collisions() const noexcept {
    return numCollisions;
  }

  static void incRef(Entry* e) noexcept;
  static void decRef(Entry* e) noexcept;

  /// Removes all entries with a zero reference count. Returns the number of
  /// collected entries. Pointers to collected entries become invalid; callers
  /// (the DD package) must clear their compute tables afterwards.
  std::size_t garbageCollect();

  /// Returns true if a garbage collection is advisable (table grew large).
  [[nodiscard]] bool possiblyNeedsCollection() const noexcept {
    return numEntries > gcThreshold;
  }

  /// Removes every entry (used on package reset). Immortals survive.
  void clear();

private:
  static constexpr std::size_t NBUCKETS = 1U << 16U; // power of two
  static constexpr std::size_t INITIAL_ALLOC = 2048;
  static constexpr std::size_t GC_INITIAL_THRESHOLD = 65536;

  static Entry zeroEntry;
  static Entry oneEntry;
  static Entry sqrt2Entry;

  [[nodiscard]] std::size_t bucketOf(double val) const noexcept;

  Entry* allocate(double val);
  void deallocate(Entry* e) noexcept;

  std::vector<Entry*> table = std::vector<Entry*>(NBUCKETS, nullptr);
  std::vector<std::unique_ptr<Entry[]>> chunks;
  std::size_t chunkIndex = 0;  ///< next free slot in the current chunk
  std::size_t chunkSize = INITIAL_ALLOC;
  Entry* freeList = nullptr;

  double tol;
  std::size_t numEntries = 0;
  std::size_t peakEntries = 0;
  std::size_t numLookups = 0;
  std::size_t numHits = 0;
  std::size_t numCollisions = 0;
  std::size_t gcThreshold = GC_INITIAL_THRESHOLD;
};

} // namespace qdd
