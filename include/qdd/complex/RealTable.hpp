#pragma once

#include "qdd/mem/MemoryManager.hpp"
#include "qdd/mem/StatsRegistry.hpp"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qdd {

/// Canonical storage for the (non-negative) real parts of edge weights.
///
/// Every distinct real value occurring as the real or imaginary part of an
/// edge weight is stored exactly once (up to a configurable tolerance).
/// Canonicity of decision diagrams then reduces weight comparison to pointer
/// comparison. Negative values are represented by tagging the least
/// significant bit of the `Entry` pointer (see Complex.hpp); the table itself
/// only ever stores values >= 0.
///
/// The bucket array starts small and doubles (rehashing all entries) when the
/// load factor exceeds one, so the table grows with the workload instead of
/// being sized at compile time. Entry storage lives in a
/// `mem::MemoryManager`, which stamps every entry with its allocation
/// generation — the hook the package's generation-stamped compute caches use
/// to reject stale weight pointers lazily after garbage collection.
///
/// This is the lookup-table design of Zulehner, Hillmich, Wille:
/// "How to efficiently handle complex values? Implementing decision diagrams
/// for quantum computing" (ICCAD 2019) — reference [14] of the paper.
class RealTable {
public:
  struct Entry {
    double value = 0.;
    Entry* next = nullptr;     ///< bucket chain / free-list link
    std::uint32_t ref = 0;     ///< reference count (from edges of live nodes)
    std::uint32_t gen = 0;     ///< allocation generation (mem::MemoryManager)
    bool immortal = false;     ///< never garbage collected (0, 1, 1/sqrt2)

    Entry() = default;
    explicit Entry(double v) : value(v) {}
  };

  /// Default tolerance used for value identification.
  static constexpr double DEFAULT_TOLERANCE = 1e-10;

  explicit RealTable(double tolerance = DEFAULT_TOLERANCE);
  ~RealTable();

  RealTable(const RealTable&) = delete;
  RealTable& operator=(const RealTable&) = delete;

  /// Shared immortal entries. These are statics so that `Complex::zero` and
  /// `Complex::one` can be constant-initialized and compared by pointer
  /// across packages.
  static Entry& zero() noexcept { return zeroEntry; }
  static Entry& one() noexcept { return oneEntry; }
  static Entry& sqrt2over2() noexcept { return sqrt2Entry; }

  /// Looks up `val` (must be >= 0) and returns the canonical entry,
  /// inserting a new one if no entry lies within the tolerance.
  Entry* lookup(double val);

  /// Switches the table between the serial fast path and the concurrent one
  /// (used by `QDD_APPLY=parallel` packages): bucket heads are then read
  /// with acquire loads and new entries published head-first with a
  /// compare-and-swap, re-walking the bucket on CAS failure so two workers
  /// canonicalizing the same value race to one winner (the loser's entry
  /// goes back to the pool). Bucket-array growth is deferred to
  /// `growIfNeeded()` at quiescent points — CAS publication pins the array.
  /// Must itself be called at a quiescent point.
  void setConcurrent(bool on) noexcept {
    concurrent = on;
    pool.setConcurrent(on);
  }
  [[nodiscard]] bool isConcurrent() const noexcept { return concurrent; }

  /// Performs any bucket-array growth deferred by concurrent-mode lookups.
  /// Must be called at a quiescent point (the package calls it after every
  /// parallel fork/join region).
  void growIfNeeded() {
    while (numEntries > table.size()) {
      grow();
    }
  }

  [[nodiscard]] double tolerance() const noexcept { return tol; }
  void setTolerance(double t) noexcept { tol = t; }

  /// Number of (non-immortal) live entries.
  [[nodiscard]] std::size_t size() const noexcept { return numEntries; }
  [[nodiscard]] std::size_t peakSize() const noexcept { return peakEntries; }
  [[nodiscard]] std::size_t lookups() const noexcept { return numLookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return numHits; }
  [[nodiscard]] std::size_t collisions() const noexcept {
    return numCollisions;
  }
  [[nodiscard]] std::size_t rehashes() const noexcept { return numRehashes; }
  [[nodiscard]] std::size_t casRetries() const noexcept {
    return numCasRetries;
  }
  [[nodiscard]] std::size_t bucketCount() const noexcept {
    return table.size();
  }

  [[nodiscard]] mem::RealTableStats stats() const noexcept;

  static void incRef(Entry* e) noexcept;
  static void decRef(Entry* e) noexcept;

  /// Relaxed-atomic reference counting for concurrent packages: forked DD
  /// subtasks pin weights of freshly inserted nodes from many threads at
  /// once. Counts are only *consulted* at quiescent GC points, so relaxed
  /// ordering suffices.
  static void incRefAtomic(Entry* e) noexcept;
  static void decRefAtomic(Entry* e) noexcept;

  /// Removes all entries with a zero reference count. Returns the number of
  /// collected entries. Pointers to collected entries become invalid; the
  /// owning package bumps the allocation generation first so its
  /// generation-stamped compute caches reject them lazily.
  std::size_t garbageCollect();

  /// Returns true if a garbage collection is advisable (table grew large).
  [[nodiscard]] bool possiblyNeedsCollection() const noexcept {
    return numEntries > gcThreshold;
  }

  /// Advances the allocation generation of the entry pool (called by the
  /// owning package before entries may be recycled).
  void setAllocationGeneration(std::uint32_t gen) noexcept {
    pool.setGeneration(gen);
  }

  /// Removes every entry (used on package reset). Immortals survive.
  void clear();

private:
  static constexpr std::size_t INITIAL_BUCKETS = 1U << 11U; // power of two
  static constexpr std::size_t GC_INITIAL_THRESHOLD = 65536;

  static Entry zeroEntry;
  static Entry oneEntry;
  static Entry sqrt2Entry;

  [[nodiscard]] std::size_t bucketOf(double val,
                                     std::size_t nbuckets) const noexcept;
  /// Doubles the bucket array and redistributes all chains.
  void grow();

  Entry* allocate(double val);

  std::vector<Entry*> table = std::vector<Entry*>(INITIAL_BUCKETS, nullptr);
  mem::MemoryManager<Entry> pool;

  /// Concurrent-mode lookup: acquire chain walks + CAS head insertion.
  Entry* lookupConcurrent(double val);

  double tol;
  std::size_t numEntries = 0;
  std::size_t peakEntries = 0;
  std::size_t numLookups = 0;
  std::size_t numHits = 0;
  std::size_t numCollisions = 0;
  std::size_t numRehashes = 0;
  std::size_t numCasRetries = 0;
  std::size_t gcThreshold = GC_INITIAL_THRESHOLD;
  bool concurrent = false;
};

} // namespace qdd
