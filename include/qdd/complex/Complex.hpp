#pragma once

#include "qdd/complex/ComplexValue.hpp"
#include "qdd/complex/RealTable.hpp"

#include <cstdint>
#include <string>

namespace qdd {

/// A canonical, table-resident complex number: a pair of pointers into the
/// `RealTable`. Negative values are encoded by tagging the least significant
/// bit of the pointer (entries are at least 2-byte aligned), so a single
/// stored magnitude serves both signs — the ICCAD'19 design ([14]).
///
/// Two `Complex` values referring to the same table compare equal iff their
/// (tagged) pointers compare equal, which makes edge-weight comparison and
/// compute-table hashing O(1) and exact.
struct Complex {
  RealTable::Entry* r = nullptr;
  RealTable::Entry* i = nullptr;

  // --- tagged pointer helpers ------------------------------------------

  [[nodiscard]] static RealTable::Entry*
  aligned(const RealTable::Entry* e) noexcept {
    return reinterpret_cast<RealTable::Entry*>(
        reinterpret_cast<std::uintptr_t>(e) & ~std::uintptr_t{1U});
  }
  [[nodiscard]] static bool isNegative(const RealTable::Entry* e) noexcept {
    return (reinterpret_cast<std::uintptr_t>(e) & 1U) != 0U;
  }
  [[nodiscard]] static RealTable::Entry*
  flipSign(RealTable::Entry* e) noexcept {
    if (aligned(e)->value == 0.) {
      return e; // -0 is canonicalized to +0
    }
    return reinterpret_cast<RealTable::Entry*>(
        reinterpret_cast<std::uintptr_t>(e) ^ std::uintptr_t{1U});
  }
  [[nodiscard]] static RealTable::Entry* tag(RealTable::Entry* e,
                                             bool negative) noexcept {
    return negative ? flipSign(e) : e;
  }
  /// Signed value of a (possibly tagged) entry pointer.
  [[nodiscard]] static double val(const RealTable::Entry* e) noexcept {
    const auto* a = aligned(e);
    return isNegative(e) ? -a->value : a->value;
  }

  // --- value access ------------------------------------------------------

  [[nodiscard]] double real() const noexcept { return val(r); }
  [[nodiscard]] double imag() const noexcept { return val(i); }
  [[nodiscard]] ComplexValue toValue() const noexcept {
    return {real(), imag()};
  }

  [[nodiscard]] bool exactlyZero() const noexcept {
    return aligned(r) == &RealTable::zero() && aligned(i) == &RealTable::zero();
  }
  [[nodiscard]] bool exactlyOne() const noexcept {
    return r == &RealTable::one() && aligned(i) == &RealTable::zero();
  }
  [[nodiscard]] bool approximatelyEquals(const Complex& o,
                                         double tol) const noexcept {
    return toValue().approximatelyEquals(o.toValue(), tol);
  }
  [[nodiscard]] bool approximatelyZero(double tol) const noexcept {
    return toValue().approximatelyZero(tol);
  }
  [[nodiscard]] bool approximatelyOne(double tol) const noexcept {
    return toValue().approximatelyOne(tol);
  }

  /// Negation is a pure pointer operation; no table access required.
  [[nodiscard]] Complex operator-() const noexcept {
    return {flipSign(r), flipSign(i)};
  }
  /// Complex conjugation is a pure pointer operation as well.
  [[nodiscard]] Complex conj() const noexcept { return {r, flipSign(i)}; }

  friend bool operator==(const Complex& a, const Complex& b) noexcept {
    return a.r == b.r && a.i == b.i;
  }

  [[nodiscard]] std::string toString(int precision = 6) const {
    return toValue().toString(precision);
  }

  // Shared canonical constants (backed by the immortal table entries).
  static const Complex zero;
  static const Complex one;
};

inline const Complex Complex::zero{&RealTable::zero(), &RealTable::zero()};
inline const Complex Complex::one{&RealTable::one(), &RealTable::zero()};

/// Owns a `RealTable` and interns `ComplexValue`s into canonical `Complex`
/// representations. One instance lives inside each DD package.
class ComplexTable {
public:
  explicit ComplexTable(double tolerance = RealTable::DEFAULT_TOLERANCE)
      : reals(tolerance) {}

  /// Interns a complex value. The returned `Complex` is canonical: equal
  /// values (within tolerance) yield pointer-identical results.
  Complex lookup(const ComplexValue& c) {
    return {lookupReal(c.re), lookupReal(c.im)};
  }
  Complex lookup(double re, double im) { return lookup(ComplexValue{re, im}); }

  [[nodiscard]] double tolerance() const noexcept { return reals.tolerance(); }
  void setTolerance(double t) noexcept { reals.setTolerance(t); }

  RealTable& realTable() noexcept { return reals; }
  [[nodiscard]] const RealTable& realTable() const noexcept { return reals; }

  static void incRef(const Complex& c) noexcept {
    RealTable::incRef(Complex::aligned(c.r));
    RealTable::incRef(Complex::aligned(c.i));
  }
  static void decRef(const Complex& c) noexcept {
    RealTable::decRef(Complex::aligned(c.r));
    RealTable::decRef(Complex::aligned(c.i));
  }

  /// Atomic variants for concurrent packages (see RealTable::incRefAtomic):
  /// forked subtasks pin weights from many threads at once.
  static void incRefAtomic(const Complex& c) noexcept {
    RealTable::incRefAtomic(Complex::aligned(c.r));
    RealTable::incRefAtomic(Complex::aligned(c.i));
  }
  static void decRefAtomic(const Complex& c) noexcept {
    RealTable::decRefAtomic(Complex::aligned(c.r));
    RealTable::decRefAtomic(Complex::aligned(c.i));
  }

  std::size_t garbageCollect() { return reals.garbageCollect(); }

private:
  RealTable::Entry* lookupReal(double v) {
    if (v >= 0.) {
      return reals.lookup(v);
    }
    return Complex::flipSign(reals.lookup(-v));
  }

  RealTable reals;
};

} // namespace qdd
