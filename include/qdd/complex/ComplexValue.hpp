#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

namespace qdd {

/// Plain value-semantic complex number used for all intermediate arithmetic.
///
/// Canonical (table-resident) complex numbers are represented by `Complex`
/// (a pair of tagged pointers into the `RealTable`); `ComplexValue` is the
/// cheap, copyable counterpart used while computing edge weights before they
/// are interned.
struct ComplexValue {
  double re = 0.;
  double im = 0.;

  constexpr ComplexValue() = default;
  constexpr ComplexValue(double real, double imag) : re(real), im(imag) {}
  constexpr explicit ComplexValue(double real) : re(real) {}
  constexpr ComplexValue(const std::complex<double>& c)
      : re(c.real()), im(c.imag()) {}

  [[nodiscard]] constexpr double mag2() const { return re * re + im * im; }
  [[nodiscard]] double mag() const { return std::hypot(re, im); }
  /// Principal argument in (-pi, pi].
  [[nodiscard]] double arg() const { return std::atan2(im, re); }

  [[nodiscard]] constexpr ComplexValue conj() const { return {re, -im}; }

  [[nodiscard]] bool approximatelyEquals(const ComplexValue& other,
                                         double tol) const {
    return std::abs(re - other.re) <= tol && std::abs(im - other.im) <= tol;
  }
  [[nodiscard]] bool approximatelyZero(double tol) const {
    return std::abs(re) <= tol && std::abs(im) <= tol;
  }
  [[nodiscard]] bool approximatelyOne(double tol) const {
    return std::abs(re - 1.) <= tol && std::abs(im) <= tol;
  }

  [[nodiscard]] constexpr bool exactlyZero() const {
    return re == 0. && im == 0.;
  }
  [[nodiscard]] constexpr bool exactlyOne() const {
    return re == 1. && im == 0.;
  }

  constexpr ComplexValue& operator+=(const ComplexValue& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  constexpr ComplexValue& operator-=(const ComplexValue& o) {
    re -= o.re;
    im -= o.im;
    return *this;
  }
  constexpr ComplexValue& operator*=(const ComplexValue& o) {
    const double r = re * o.re - im * o.im;
    const double i = re * o.im + im * o.re;
    re = r;
    im = i;
    return *this;
  }
  ComplexValue& operator/=(const ComplexValue& o) {
    const double d = o.mag2();
    const double r = (re * o.re + im * o.im) / d;
    const double i = (im * o.re - re * o.im) / d;
    re = r;
    im = i;
    return *this;
  }

  friend constexpr ComplexValue operator+(ComplexValue a,
                                          const ComplexValue& b) {
    return a += b;
  }
  friend constexpr ComplexValue operator-(ComplexValue a,
                                          const ComplexValue& b) {
    return a -= b;
  }
  friend constexpr ComplexValue operator*(ComplexValue a,
                                          const ComplexValue& b) {
    return a *= b;
  }
  friend ComplexValue operator/(ComplexValue a, const ComplexValue& b) {
    return a /= b;
  }
  friend constexpr ComplexValue operator*(ComplexValue a, double s) {
    a.re *= s;
    a.im *= s;
    return a;
  }
  friend constexpr ComplexValue operator*(double s, ComplexValue a) {
    return a * s;
  }
  friend constexpr bool operator==(const ComplexValue& a,
                                   const ComplexValue& b) {
    return a.re == b.re && a.im == b.im;
  }

  [[nodiscard]] constexpr ComplexValue operator-() const { return {-re, -im}; }

  [[nodiscard]] std::complex<double> toStdComplex() const { return {re, im}; }

  /// Unit complex number with the given phase: e^{i*phase}.
  [[nodiscard]] static ComplexValue fromPolar(double magnitude, double phase) {
    return {magnitude * std::cos(phase), magnitude * std::sin(phase)};
  }

  /// Human-readable rendering, e.g. "0.707107+0.707107i".
  [[nodiscard]] std::string toString(int precision = 6) const;
};

std::ostream& operator<<(std::ostream& os, const ComplexValue& c);

/// 1/sqrt(2) with full double precision.
inline constexpr double SQRT2_2 = 0.70710678118654752440L;
inline constexpr double PI = 3.14159265358979323846L;

} // namespace qdd

template <> struct std::hash<qdd::ComplexValue> {
  std::size_t operator()(const qdd::ComplexValue& c) const noexcept {
    const std::size_t h1 = std::hash<double>{}(c.re);
    const std::size_t h2 = std::hash<double>{}(c.im);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6U) + (h1 >> 2U));
  }
};
