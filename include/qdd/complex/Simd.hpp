#pragma once

#include "qdd/complex/ComplexValue.hpp"

#include <atomic>
#include <cstdint>

#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define QDD_SIMD_SSE2 1
#include <emmintrin.h>
#if defined(__SSE3__)
#include <pmmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif
#endif

namespace qdd::simd {

/// Width of the complex-arithmetic kernels. Selected at compile time from
/// the target ISA; `QDD_SIMD=scalar` in the environment (or a
/// `ScopedScalarOverride`) forces the scalar fallback at runtime. Every
/// kernel is bit-identical across modes — the vector paths perform the same
/// IEEE operations in the same order as the scalar expressions, only
/// lane-parallel — which is what lets the DD layer use them freely: table
/// canonicity turns any numeric drift into different node identities, so the
/// cross-validation tests compare canonical root POINTERS across modes.
enum class Mode : std::uint8_t { Scalar, SSE2, AVX2 };

[[nodiscard]] constexpr Mode compiledMode() noexcept {
#if defined(__AVX2__)
  return Mode::AVX2;
#elif defined(QDD_SIMD_SSE2)
  return Mode::SSE2;
#else
  return Mode::Scalar;
#endif
}

[[nodiscard]] const char* toString(Mode mode) noexcept;

namespace detail {
/// Runtime scalar-force state, read on every kernel call — plain globals so
/// the check inlines to two loads. `envScalar` is written once during
/// dynamic initialization (a read before that harmlessly picks the vector
/// path: all modes are bit-identical); `overrideDepth` counts live
/// ScopedScalarOverride instances and is constant-initialized.
extern bool envScalar;
extern std::atomic<int> overrideDepth;
} // namespace detail

/// True when the scalar fallback is forced (QDD_SIMD=scalar at process
/// start, or an active ScopedScalarOverride).
[[nodiscard]] inline bool scalarForced() noexcept {
  return detail::envScalar ||
         detail::overrideDepth.load(std::memory_order_relaxed) > 0;
}

/// The mode the kernels actually run in right now.
[[nodiscard]] inline Mode activeMode() noexcept {
  return scalarForced() ? Mode::Scalar : compiledMode();
}

/// RAII scalar-mode override for cross-validation tests: kernels run the
/// scalar fallback while any instance is alive (nestable).
class ScopedScalarOverride {
public:
  ScopedScalarOverride();
  ~ScopedScalarOverride();
  ScopedScalarOverride(const ScopedScalarOverride&) = delete;
  ScopedScalarOverride& operator=(const ScopedScalarOverride&) = delete;
};

// --- kernels ----------------------------------------------------------------

/// Scalar reference: the exact expression (and rounding order) of
/// ComplexValue::operator*=.
[[nodiscard]] inline ComplexValue mulScalar(const ComplexValue& a,
                                            const ComplexValue& b) noexcept {
  return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

#if defined(QDD_SIMD_SSE2)
namespace detail {
/// (re, im) complex product in one register. Terms match the scalar
/// expression lane for lane: p = (a.re*b.re, a.re*b.im),
/// q = (a.im*b.im, a.im*b.re), result = (p0 - q0, p1 + q1).
[[nodiscard]] inline __m128d mul128(__m128d a, __m128d b) noexcept {
  const __m128d p = _mm_mul_pd(_mm_unpacklo_pd(a, a), b);
  const __m128d q =
      _mm_mul_pd(_mm_unpackhi_pd(a, a), _mm_shuffle_pd(b, b, 1));
#if defined(__SSE3__)
  return _mm_addsub_pd(p, q);
#else
  // addsub emulation: negating q's low lane turns (sub, add) into two adds.
  // x + (-y) and x - y round identically for every input, so this stays
  // bit-identical to the scalar expression.
  return _mm_add_pd(p, _mm_xor_pd(q, _mm_set_pd(0., -0.)));
#endif
}
} // namespace detail
#endif

/// Complex product a*b, bit-identical to `a.toValue() * b.toValue()`.
[[nodiscard]] inline ComplexValue mul(const ComplexValue& a,
                                      const ComplexValue& b) noexcept {
#if defined(QDD_SIMD_SSE2)
  if (!scalarForced()) {
    ComplexValue out;
    _mm_storeu_pd(&out.re, detail::mul128(_mm_loadu_pd(&a.re),
                                          _mm_loadu_pd(&b.re)));
    return out;
  }
#endif
  return mulScalar(a, b);
}

/// Left-associated triple product (a*b)*c — the exact shape of the edge
/// weight composition `m.w * xe.w * ye.w` in multiply2.
[[nodiscard]] inline ComplexValue mul3(const ComplexValue& a,
                                       const ComplexValue& b,
                                       const ComplexValue& c) noexcept {
#if defined(QDD_SIMD_SSE2)
  if (!scalarForced()) {
    const __m128d ab = detail::mul128(_mm_loadu_pd(&a.re),
                                      _mm_loadu_pd(&b.re));
    ComplexValue out;
    _mm_storeu_pd(&out.re, detail::mul128(ab, _mm_loadu_pd(&c.re)));
    return out;
  }
#endif
  return mulScalar(mulScalar(a, b), c);
}

/// Two independent complex products (r0, r1) = (a0*b0, a1*b1) — the 2x2
/// gate-application block shape (both target successors scale at once).
/// AVX2 runs both in one 256-bit lane pair; SSE2 runs them back to back.
inline void mulPair(const ComplexValue& a0, const ComplexValue& b0,
                    const ComplexValue& a1, const ComplexValue& b1,
                    ComplexValue& r0, ComplexValue& r1) noexcept {
#if defined(__AVX2__)
  if (!scalarForced()) {
    const __m256d a = _mm256_set_m128d(_mm_loadu_pd(&a1.re),
                                       _mm_loadu_pd(&a0.re));
    const __m256d b = _mm256_set_m128d(_mm_loadu_pd(&b1.re),
                                       _mm_loadu_pd(&b0.re));
    const __m256d p = _mm256_mul_pd(_mm256_unpacklo_pd(a, a), b);
    const __m256d q = _mm256_mul_pd(_mm256_unpackhi_pd(a, a),
                                    _mm256_shuffle_pd(b, b, 0b0101));
    const __m256d res = _mm256_addsub_pd(p, q);
    _mm_storeu_pd(&r0.re, _mm256_castpd256_pd128(res));
    _mm_storeu_pd(&r1.re, _mm256_extractf128_pd(res, 1));
    return;
  }
#endif
  r0 = mul(a0, b0);
  r1 = mul(a1, b1);
}

/// Complex sum a + b (lane-parallel re/im add; trivially bit-identical).
[[nodiscard]] inline ComplexValue add(const ComplexValue& a,
                                      const ComplexValue& b) noexcept {
#if defined(QDD_SIMD_SSE2)
  if (!scalarForced()) {
    ComplexValue out;
    _mm_storeu_pd(&out.re,
                  _mm_add_pd(_mm_loadu_pd(&a.re), _mm_loadu_pd(&b.re)));
    return out;
  }
#endif
  return {a.re + b.re, a.im + b.im};
}

/// Fused multiply-accumulate of two complex terms: a0*b0 + a1*b1, the inner
/// sum of a 2x2 block row in gate application / matrix multiply. Composed
/// from the kernels above (no FMA contraction — contraction would change
/// rounding and break cross-mode bit-identity).
[[nodiscard]] inline ComplexValue mulAdd2(const ComplexValue& a0,
                                          const ComplexValue& b0,
                                          const ComplexValue& a1,
                                          const ComplexValue& b1) noexcept {
  ComplexValue t0;
  ComplexValue t1;
  mulPair(a0, b0, a1, b1, t0, t1);
  return add(t0, t1);
}

/// RealTable lookup rounding helper: classifies a non-negative value against
/// the two non-zero immortal entries (1 and 1/sqrt2) in one lane-parallel
/// compare. Returns 0 = neither, 1 = one, 2 = sqrt2. The comparisons are
/// exact (<=), so this is bit-identical to the two scalar branches it
/// replaces.
[[nodiscard]] inline int classifyImmortal(double v, double tol) noexcept {
#if defined(QDD_SIMD_SSE2)
  if (!scalarForced()) {
    const __m128d x = _mm_set1_pd(v);
    const __m128d ref = _mm_set_pd(SQRT2_2, 1.); // lane0 = 1, lane1 = sqrt2
    __m128d d = _mm_sub_pd(x, ref);
    // |d| via sign-bit mask clear
    d = _mm_and_pd(d, _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL)));
    const int mask = _mm_movemask_pd(_mm_cmple_pd(d, _mm_set1_pd(tol)));
    if ((mask & 1) != 0) {
      return 1;
    }
    if ((mask & 2) != 0) {
      return 2;
    }
    return 0;
  }
#endif
  if (v - 1. <= tol && 1. - v <= tol) {
    return 1;
  }
  if (v - SQRT2_2 <= tol && SQRT2_2 - v <= tol) {
    return 2;
  }
  return 0;
}

} // namespace qdd::simd
