#pragma once

#include "qdd/ir/QuantumComputation.hpp"

#include <utility>
#include <vector>

namespace qdd::ir {

/// Undirected coupling-constraint graph over physical qubits — the device
/// model behind the "mapping" compilation step the paper's verification
/// scenario targets (Sec. III-C; refs [23]-[27]: "mapping quantum circuits
/// to IBM QX architectures").
class CouplingMap {
public:
  CouplingMap(std::size_t numPhysical,
              std::vector<std::pair<Qubit, Qubit>> edges);

  /// Linear chain 0-1-2-...-(n-1).
  static CouplingMap linear(std::size_t n);
  /// Ring 0-1-...-(n-1)-0.
  static CouplingMap ring(std::size_t n);
  /// rows x cols grid with nearest-neighbour connectivity.
  static CouplingMap grid(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t size() const noexcept { return n; }
  [[nodiscard]] bool connected(Qubit a, Qubit b) const;
  /// BFS shortest path from a to b (inclusive); empty if disconnected.
  [[nodiscard]] std::vector<Qubit> shortestPath(Qubit a, Qubit b) const;
  [[nodiscard]] const std::vector<std::pair<Qubit, Qubit>>&
  edges() const noexcept {
    return edgeList;
  }

private:
  std::size_t n;
  std::vector<std::pair<Qubit, Qubit>> edgeList;
  std::vector<std::vector<Qubit>> adjacency;
};

/// Result of mapping a circuit onto a coupling graph.
struct MappingResult {
  /// The routed circuit over physical qubits (all two-qubit interactions
  /// respect the coupling map).
  QuantumComputation mapped;
  /// outputPosition[q] = physical wire holding logical qubit q at the end.
  std::vector<Qubit> outputPosition;
  /// Number of SWAP gates inserted by routing.
  std::size_t addedSwaps = 0;

  /// The mapped circuit with trailing SWAPs that restore logical ordering,
  /// making it directly equivalent to the original circuit (used to verify
  /// the compilation flow, paper ref. [28]).
  [[nodiscard]] QuantumComputation mappedWithRestore() const;
};

/// Maps `qc` onto `coupling` with a trivial initial layout (logical qubit k
/// starts on physical wire k) and greedy shortest-path SWAP routing.
/// Supports single-qubit gates, two-qubit standard gates (one control + one
/// target, or SWAP), measurements, resets, and barriers. Throws
/// std::invalid_argument for gates acting on three or more qubits —
/// decompose first (e.g. with decomposeToNativeGates).
MappingResult mapToCoupling(const QuantumComputation& qc,
                            const CouplingMap& coupling);

} // namespace qdd::ir
