#pragma once

#include "qdd/ir/Operation.hpp"

#include <vector>

namespace qdd::ir {

/// A named group of operations (e.g. an expanded user-defined QASM gate).
class CompoundOperation final : public Operation {
public:
  explicit CompoundOperation(std::string label = "");
  CompoundOperation(const CompoundOperation& other);
  CompoundOperation& operator=(const CompoundOperation& other);

  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<CompoundOperation>(*this);
  }

  [[nodiscard]] bool isCompoundOperation() const override { return true; }
  [[nodiscard]] bool isUnitary() const override;

  void emplaceBack(std::unique_ptr<Operation> op) {
    ops.emplace_back(std::move(op));
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Operation>>&
  operations() const noexcept {
    return ops;
  }
  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
  [[nodiscard]] const std::string& label() const noexcept { return groupLabel; }

  [[nodiscard]] std::vector<Qubit> usedQubits() const override;

  void invert() override;

  void dumpOpenQASM(std::ostream& os,
                    const std::vector<std::string>& qubitNames,
                    const std::vector<std::string>& clbitNames) const override;

  [[nodiscard]] std::string name() const override;

private:
  std::vector<std::unique_ptr<Operation>> ops;
  std::string groupLabel;
};

} // namespace qdd::ir
