#pragma once

#include <cstdint>
#include <string>

namespace qdd::ir {

/// Types of operations occurring in quantum circuits.
enum class OpType : std::uint8_t {
  None,
  // single-qubit unitaries
  I,
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  T,
  Tdg,
  V,
  Vdg,
  SX,
  SXdg,
  RX,
  RY,
  RZ,
  Phase, ///< P(theta) = diag(1, e^{i theta}); S = P(pi/2), T = P(pi/4)
  U2,
  U3,
  // two-qubit unitaries
  SWAP,
  iSWAP,
  iSWAPdg,
  DCX, ///< double-CNOT: CX(a,b) followed by CX(b,a)
  // non-unitary / structural
  Measure,
  Reset,
  Barrier,
  ClassicControlled,
  Compound,
};

/// Short lower-case mnemonic, e.g. "h", "sdg", "p", "swap".
std::string toString(OpType t);

/// Number of angle parameters an operation of this type carries.
std::size_t numParameters(OpType t);

/// Number of target qubits (1 or 2) for unitary standard operations.
std::size_t numTargets(OpType t);

/// True for gate types describable by a unitary matrix.
bool isUnitaryType(OpType t);

/// True if the gate is its own inverse.
bool isSelfInverse(OpType t);

} // namespace qdd::ir
