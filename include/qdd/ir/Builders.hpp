#pragma once

#include "qdd/ir/QuantumComputation.hpp"

#include <cstdint>
#include <string>

namespace qdd::ir {

/// Circuit generators for the algorithms used throughout the paper and its
/// evaluation reproduction.
namespace builders {

/// The two-qubit Bell circuit of Fig. 1(c): H on q1, CNOT(q1 -> q0).
QuantumComputation bell();

/// n-qubit GHZ-state preparation: H on q_{n-1}, then a CNOT cascade.
QuantumComputation ghz(std::size_t n);

/// Quantum Fourier Transform on n qubits (paper Fig. 5(a) for n = 3):
/// Hadamards, controlled phase rotations P(pi/2^k), and final SWAPs.
QuantumComputation qft(std::size_t n, bool includeSwaps = true);

/// W-state preparation on n qubits (RY-based cascade).
QuantumComputation wState(std::size_t n);

/// Grover search: `iterations` Grover iterations marking basis state
/// `marked` (bitstring q_{n-1}...q_0); pass iterations = 0 for the
/// asymptotically optimal round count.
QuantumComputation grover(std::size_t n, std::uint64_t marked,
                          std::size_t iterations = 0);

/// Bernstein-Vazirani for hidden string `s` on n data qubits (+1 ancilla).
QuantumComputation bernsteinVazirani(std::size_t n, std::uint64_t s);

/// Random circuit over the Clifford+T gate set {H, S, T, X, Z, CX} with the
/// given number of layers; deterministic in `seed`.
QuantumComputation randomCliffordT(std::size_t n, std::size_t depth,
                                   std::uint64_t seed);

/// Quantum phase estimation of the phase gate P(2*pi*theta) with
/// theta = k / 2^precision, on `precision` counting qubits (0..precision-1)
/// plus one eigenstate qubit (the most significant). Measuring the counting
/// register yields k exactly.
QuantumComputation phaseEstimation(std::size_t precision, std::uint64_t k);

/// Deutsch-Jozsa on n data qubits (+1 ancilla). With `balanced`, the oracle
/// is f(x) = x_0 (balanced); otherwise f is constant 0. Measuring the data
/// register yields all-zero iff f is constant.
QuantumComputation deutschJozsa(std::size_t n, bool balanced);

/// Cuccaro ripple-carry adder: computes b <- a + b (mod 2^n) using a single
/// ancilla carry qubit. Layout (LSB first): carry = q0, then interleaved
/// a_i = q_{2i+1}, b_i = q_{2i+2}.
QuantumComputation rippleCarryAdder(std::size_t n);

} // namespace builders

/// Rewrites a circuit onto a permuted qubit labelling: qubit k of the input
/// becomes qubit `permutation[k]` of the result. Together with
/// Package::permuteQubits this enables equivalence checking of circuits
/// with different qubit orderings (the scenario the paper's tool refers to
/// QCEC for, Sec. IV-C).
QuantumComputation remapQubits(const QuantumComputation& qc,
                               const std::vector<Qubit>& permutation);

/// Compilation pass used for the verification scenario of Sec. III-C /
/// Fig. 5(b): rewrites controlled phase gates and SWAPs into CNOTs plus
/// single-qubit phase gates (the "native" gate set). With `insertBarriers`,
/// a barrier is placed after each original gate's expansion — exactly the
/// dashed synchronization points of Fig. 5(b) exploited in Ex. 12.
QuantumComputation decomposeToNativeGates(const QuantumComputation& qc,
                                          bool insertBarriers = false);

} // namespace qdd::ir
