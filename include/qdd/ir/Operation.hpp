#pragma once

#include "qdd/common/Definitions.hpp"
#include "qdd/ir/OpType.hpp"

#include <iosfwd>
#include <memory>
#include <vector>

namespace qdd::ir {

/// Abstract base for every element of a quantum circuit: standard (unitary)
/// gates, non-unitary operations (measure/reset/barrier), classically
/// controlled operations, and compound groups.
class Operation {
public:
  Operation() = default;
  Operation(const Operation&) = default;
  Operation& operator=(const Operation&) = default;
  virtual ~Operation() = default;

  [[nodiscard]] virtual std::unique_ptr<Operation> clone() const = 0;

  [[nodiscard]] OpType type() const noexcept { return opType; }
  [[nodiscard]] const std::vector<Qubit>& targets() const noexcept {
    return targetQubits;
  }
  [[nodiscard]] const QubitControls& controls() const noexcept {
    return controlQubits;
  }
  [[nodiscard]] const std::vector<double>& parameters() const noexcept {
    return params;
  }

  /// All qubits this operation touches (controls + targets).
  [[nodiscard]] virtual std::vector<Qubit> usedQubits() const;

  [[nodiscard]] virtual bool isUnitary() const { return true; }
  [[nodiscard]] virtual bool isStandardOperation() const { return false; }
  [[nodiscard]] virtual bool isNonUnitaryOperation() const { return false; }
  [[nodiscard]] virtual bool isClassicControlledOperation() const {
    return false;
  }
  [[nodiscard]] virtual bool isCompoundOperation() const { return false; }

  /// In-place inversion. Throws std::logic_error for non-invertible
  /// (non-unitary) operations.
  virtual void invert() = 0;

  /// Emits the OpenQASM 2.0 representation (newline-terminated) using the
  /// given register names for flat qubit/clbit indices.
  virtual void dumpOpenQASM(std::ostream& os,
                            const std::vector<std::string>& qubitNames,
                            const std::vector<std::string>& clbitNames)
      const = 0;

  /// Short human-readable description, e.g. "cp(pi/4) q1, q0".
  [[nodiscard]] virtual std::string name() const;

protected:
  OpType opType = OpType::None;
  std::vector<Qubit> targetQubits;
  QubitControls controlQubits;
  std::vector<double> params;
};

} // namespace qdd::ir
