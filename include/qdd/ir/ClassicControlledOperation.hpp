#pragma once

#include "qdd/ir/Operation.hpp"

#include <cstdint>

namespace qdd::ir {

/// An operation applied only if a range of classical bits (obtained from
/// measurements) holds a given value — OpenQASM's `if (c == v) gate ...;`
/// (supported by the tool's simulation view, Sec. IV-B).
class ClassicControlledOperation final : public Operation {
public:
  ClassicControlledOperation(std::unique_ptr<Operation> operation,
                             std::size_t firstClbit, std::size_t numClbits,
                             std::uint64_t expected);

  ClassicControlledOperation(const ClassicControlledOperation& other);
  ClassicControlledOperation&
  operator=(const ClassicControlledOperation& other);

  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<ClassicControlledOperation>(*this);
  }

  [[nodiscard]] bool isUnitary() const override { return false; }
  [[nodiscard]] bool isClassicControlledOperation() const override {
    return true;
  }

  [[nodiscard]] const Operation& operation() const noexcept { return *op; }
  [[nodiscard]] std::size_t firstClbit() const noexcept { return first; }
  [[nodiscard]] std::size_t numClbits() const noexcept { return count; }
  [[nodiscard]] std::uint64_t expectedValue() const noexcept {
    return expected;
  }

  /// Evaluates the condition against the given classical register contents.
  [[nodiscard]] bool
  conditionSatisfied(const std::vector<bool>& classicalBits) const;

  [[nodiscard]] std::vector<Qubit> usedQubits() const override {
    return op->usedQubits();
  }

  void invert() override;

  void dumpOpenQASM(std::ostream& os,
                    const std::vector<std::string>& qubitNames,
                    const std::vector<std::string>& clbitNames) const override;

  [[nodiscard]] std::string name() const override;

private:
  std::unique_ptr<Operation> op;
  std::size_t first = 0;
  std::size_t count = 0;
  std::uint64_t expected = 0;
};

} // namespace qdd::ir
