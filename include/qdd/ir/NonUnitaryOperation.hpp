#pragma once

#include "qdd/ir/Operation.hpp"

namespace qdd::ir {

/// Measurements, resets, and barriers — the "special operations" of
/// Sec. IV-B that do not correspond to the application of a unitary matrix
/// and act as breakpoints when stepping through a simulation.
class NonUnitaryOperation final : public Operation {
public:
  /// Measurement of `qubits[k]` into classical bit `clbits[k]`.
  NonUnitaryOperation(std::vector<Qubit> qubits, std::vector<std::size_t> clbits);
  /// Reset (OpType::Reset) or barrier (OpType::Barrier) on `qubits`.
  NonUnitaryOperation(OpType t, std::vector<Qubit> qubits);

  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<NonUnitaryOperation>(*this);
  }

  [[nodiscard]] bool isUnitary() const override {
    return opType == OpType::Barrier;
  }
  [[nodiscard]] bool isNonUnitaryOperation() const override { return true; }

  [[nodiscard]] const std::vector<std::size_t>& classics() const noexcept {
    return classicBits;
  }

  void invert() override;

  void dumpOpenQASM(std::ostream& os,
                    const std::vector<std::string>& qubitNames,
                    const std::vector<std::string>& clbitNames) const override;

  [[nodiscard]] std::string name() const override;

private:
  std::vector<std::size_t> classicBits; ///< parallel to targets (Measure only)
};

} // namespace qdd::ir
