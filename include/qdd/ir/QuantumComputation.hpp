#pragma once

#include "qdd/ir/ClassicControlledOperation.hpp"
#include "qdd/ir/CompoundOperation.hpp"
#include "qdd/ir/NonUnitaryOperation.hpp"
#include "qdd/ir/Operation.hpp"
#include "qdd/ir/StandardOperation.hpp"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace qdd::ir {

/// A named register mapped onto a contiguous range of flat (qu)bit indices.
struct Register {
  std::string name;
  std::size_t start = 0;
  std::size_t size = 0;

  [[nodiscard]] bool contains(std::size_t flat) const noexcept {
    return flat >= start && flat < start + size;
  }
};

/// A quantum circuit: an ordered list of operations over flat qubit and
/// classical-bit index spaces, together with register metadata for
/// OpenQASM-faithful round-trips.
class QuantumComputation {
public:
  QuantumComputation() = default;
  /// Creates a circuit with a default register q[nq] (and c[nc] if nc > 0).
  explicit QuantumComputation(std::size_t nq, std::size_t nc = 0,
                              std::string name = "");

  QuantumComputation(const QuantumComputation& other);
  QuantumComputation& operator=(const QuantumComputation& other);
  QuantumComputation(QuantumComputation&&) noexcept = default;
  QuantumComputation& operator=(QuantumComputation&&) noexcept = default;

  // --- structure -----------------------------------------------------------

  [[nodiscard]] std::size_t numQubits() const noexcept { return nqubits; }
  [[nodiscard]] std::size_t numClbits() const noexcept { return nclbits; }
  [[nodiscard]] const std::string& name() const noexcept { return circuitName; }
  void setName(std::string n) { circuitName = std::move(n); }

  /// Appends a quantum register; returns the first flat index.
  std::size_t addQubitRegister(std::size_t size, const std::string& name = "q");
  /// Appends a classical register; returns the first flat index.
  std::size_t addClassicalRegister(std::size_t size,
                                   const std::string& name = "c");
  [[nodiscard]] const std::vector<Register>& qubitRegisters() const noexcept {
    return qregs;
  }
  [[nodiscard]] const std::vector<Register>&
  classicalRegisters() const noexcept {
    return cregs;
  }
  /// Finds a classical register by name (nullptr if absent).
  [[nodiscard]] const Register* classicalRegister(const std::string& n) const;

  // --- operation list --------------------------------------------------------

  using OpList = std::vector<std::unique_ptr<Operation>>;
  using iterator = OpList::iterator;
  using const_iterator = OpList::const_iterator;

  iterator begin() noexcept { return ops.begin(); }
  iterator end() noexcept { return ops.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return ops.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return ops.end(); }
  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops.empty(); }
  [[nodiscard]] const Operation& at(std::size_t k) const { return *ops.at(k); }

  void emplaceBack(std::unique_ptr<Operation> op);
  template <class Op, class... Args> void emplaceOp(Args&&... args) {
    emplaceBack(std::make_unique<Op>(std::forward<Args>(args)...));
  }

  /// Number of gates; with `flatten`, compound operations count their
  /// members and barriers are excluded.
  [[nodiscard]] std::size_t gateCount(bool flatten = true) const;

  /// True if every operation is unitary (no measurements/resets/classic
  /// controls; barriers allowed).
  [[nodiscard]] bool isPurelyUnitary() const;

  // --- gate convenience methods ----------------------------------------------

  void i(Qubit q) { addStandard(OpType::I, {}, {q}); }
  void h(Qubit q) { addStandard(OpType::H, {}, {q}); }
  void x(Qubit q) { addStandard(OpType::X, {}, {q}); }
  void y(Qubit q) { addStandard(OpType::Y, {}, {q}); }
  void z(Qubit q) { addStandard(OpType::Z, {}, {q}); }
  void s(Qubit q) { addStandard(OpType::S, {}, {q}); }
  void sdg(Qubit q) { addStandard(OpType::Sdg, {}, {q}); }
  void t(Qubit q) { addStandard(OpType::T, {}, {q}); }
  void tdg(Qubit q) { addStandard(OpType::Tdg, {}, {q}); }
  void v(Qubit q) { addStandard(OpType::V, {}, {q}); }
  void vdg(Qubit q) { addStandard(OpType::Vdg, {}, {q}); }
  void sx(Qubit q) { addStandard(OpType::SX, {}, {q}); }
  void sxdg(Qubit q) { addStandard(OpType::SXdg, {}, {q}); }
  void rx(double theta, Qubit q) { addStandard(OpType::RX, {}, {q}, {theta}); }
  void ry(double theta, Qubit q) { addStandard(OpType::RY, {}, {q}, {theta}); }
  void rz(double theta, Qubit q) { addStandard(OpType::RZ, {}, {q}, {theta}); }
  void phase(double theta, Qubit q) {
    addStandard(OpType::Phase, {}, {q}, {theta});
  }
  void u2(double phi, double lambda, Qubit q) {
    addStandard(OpType::U2, {}, {q}, {phi, lambda});
  }
  void u3(double theta, double phi, double lambda, Qubit q) {
    addStandard(OpType::U3, {}, {q}, {theta, phi, lambda});
  }

  void cx(Qubit c, Qubit t) { addStandard(OpType::X, {{c, true}}, {t}); }
  void cy(Qubit c, Qubit t) { addStandard(OpType::Y, {{c, true}}, {t}); }
  void cz(Qubit c, Qubit t) { addStandard(OpType::Z, {{c, true}}, {t}); }
  void ch(Qubit c, Qubit t) { addStandard(OpType::H, {{c, true}}, {t}); }
  void cs(Qubit c, Qubit t) { addStandard(OpType::S, {{c, true}}, {t}); }
  void ccx(Qubit c1, Qubit c2, Qubit t) {
    addStandard(OpType::X, {{c1, true}, {c2, true}}, {t});
  }
  void mcx(const QubitControls& cs, Qubit t) { addStandard(OpType::X, cs, {t}); }
  void cphase(double theta, Qubit c, Qubit t) {
    addStandard(OpType::Phase, {{c, true}}, {t}, {theta});
  }
  void crz(double theta, Qubit c, Qubit t) {
    addStandard(OpType::RZ, {{c, true}}, {t}, {theta});
  }
  void cry(double theta, Qubit c, Qubit t) {
    addStandard(OpType::RY, {{c, true}}, {t}, {theta});
  }
  void swap(Qubit a, Qubit b) { addStandard(OpType::SWAP, {}, {a, b}); }
  void iswap(Qubit a, Qubit b) { addStandard(OpType::iSWAP, {}, {a, b}); }
  void iswapdg(Qubit a, Qubit b) {
    addStandard(OpType::iSWAPdg, {}, {a, b});
  }
  void dcx(Qubit a, Qubit b) { addStandard(OpType::DCX, {}, {a, b}); }
  void cswap(Qubit c, Qubit a, Qubit b) {
    addStandard(OpType::SWAP, {{c, true}}, {a, b});
  }

  /// Generic controlled standard gate.
  void addStandard(OpType t, const QubitControls& controls,
                   std::vector<Qubit> targets, std::vector<double> params = {});

  void measure(Qubit q, std::size_t clbit);
  /// Measures every qubit k into classical bit k (adding classical bits if
  /// necessary).
  void measureAll();
  void reset(Qubit q);
  void barrier();                      ///< barrier on all qubits
  void barrier(std::vector<Qubit> qs); ///< barrier on specific qubits
  void classicControlled(std::unique_ptr<Operation> op, std::size_t firstClbit,
                         std::size_t numClbits, std::uint64_t expected);

  // --- transformations ---------------------------------------------------------

  /// Returns the inverse circuit G^{-1} (reversed order, inverted gates).
  /// Throws std::logic_error if a non-unitary operation is present
  /// (barriers are dropped).
  [[nodiscard]] QuantumComputation inverted() const;

  // --- IO -------------------------------------------------------------------------

  /// Emits the circuit as OpenQASM 2.0.
  void dumpOpenQASM(std::ostream& os) const;
  [[nodiscard]] std::string toOpenQASM() const;

  /// Flat per-qubit wire names ("q[3]") for dumping operations.
  [[nodiscard]] std::vector<std::string> qubitNames() const;
  [[nodiscard]] std::vector<std::string> clbitNames() const;

private:
  void ensureQubit(Qubit q);

  std::size_t nqubits = 0;
  std::size_t nclbits = 0;
  std::string circuitName;
  std::vector<Register> qregs;
  std::vector<Register> cregs;
  OpList ops;
};

} // namespace qdd::ir
