#pragma once

#include "qdd/ir/Operation.hpp"

#include <stdexcept>

namespace qdd::ir {

/// A (possibly multi-controlled) unitary gate from the standard gate set.
class StandardOperation final : public Operation {
public:
  StandardOperation(OpType t, QubitControls controls, std::vector<Qubit> targets,
                    std::vector<double> parameters = {});

  /// Uncontrolled single-target convenience constructor.
  StandardOperation(OpType t, Qubit target, std::vector<double> parameters = {})
      : StandardOperation(t, {}, std::vector<Qubit>{target},
                          std::move(parameters)) {}

  [[nodiscard]] std::unique_ptr<Operation> clone() const override {
    return std::make_unique<StandardOperation>(*this);
  }

  [[nodiscard]] bool isStandardOperation() const override { return true; }

  void invert() override;

  void dumpOpenQASM(std::ostream& os,
                    const std::vector<std::string>& qubitNames,
                    const std::vector<std::string>& clbitNames) const override;

private:
  void checkConsistency() const;
};

} // namespace qdd::ir
