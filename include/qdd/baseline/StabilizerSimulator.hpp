#pragma once

#include "qdd/common/Definitions.hpp"
#include "qdd/ir/QuantumComputation.hpp"

#include <random>
#include <vector>

namespace qdd::baseline {

/// Stabilizer-tableau simulator (Aaronson-Gottesman "CHP") for Clifford
/// circuits: polynomial in the number of qubits, but restricted to the
/// Clifford gate set {H, S, CX} (+ derived X/Y/Z/Sdg/SWAP).
///
/// Serves as the second baseline next to the dense simulator: decision
/// diagrams are compared against both the exponential-but-universal dense
/// representation and this polynomial-but-restricted one, locating the DD
/// approach between the two (see bench_baseline_stabilizer).
class StabilizerSimulator {
public:
  explicit StabilizerSimulator(std::size_t nqubits);

  [[nodiscard]] std::size_t qubits() const noexcept { return n; }

  // --- primitive Clifford gates -----------------------------------------
  void h(Qubit q);
  void s(Qubit q);
  void cx(Qubit control, Qubit target);
  // --- derived gates ------------------------------------------------------
  void sdg(Qubit q) { s(q); s(q); s(q); }
  void z(Qubit q) { s(q); s(q); }
  void x(Qubit q) { h(q); z(q); h(q); }
  void y(Qubit q) { z(q); x(q); } // global phase irrelevant for stabilizers
  void swap(Qubit a, Qubit b) { cx(a, b); cx(b, a); cx(a, b); }

  /// Applies one IR operation. Throws std::invalid_argument for
  /// non-Clifford gates (e.g. T) — that is the point of this baseline.
  void apply(const ir::Operation& op);
  /// Runs a purely unitary Clifford circuit.
  void run(const ir::QuantumComputation& qc);

  /// Measurement outcome classification for qubit q without collapsing.
  enum class Outcome { Zero, One, Random };
  [[nodiscard]] Outcome peek(Qubit q) const;
  /// Probability of measuring |1> (0, 1, or 0.5 for stabilizer states).
  [[nodiscard]] double probabilityOfOne(Qubit q) const;

  /// Z-basis measurement with collapse.
  int measure(Qubit q, std::mt19937_64& rng);

  /// Samples all qubits (collapsing a copy), big-endian q_{n-1}...q_0.
  [[nodiscard]] std::string sample(std::mt19937_64& rng) const;

private:
  [[nodiscard]] bool xBit(std::size_t row, std::size_t q) const {
    return table[row * stride + q];
  }
  [[nodiscard]] bool zBit(std::size_t row, std::size_t q) const {
    return table[row * stride + n + q];
  }
  /// Multiplies Pauli row `src` into row `dst` (the CHP "rowsum").
  void rowsum(std::size_t dst, std::size_t src);

  std::size_t n;
  std::size_t stride; ///< 2n bits per row (x then z)
  /// rows 0..n-1: destabilizers; rows n..2n-1: stabilizers
  std::vector<bool> table;
  std::vector<bool> phase; ///< r_i per row
};

} // namespace qdd::baseline
