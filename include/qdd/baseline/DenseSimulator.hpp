#pragma once

#include "qdd/common/Definitions.hpp"
#include "qdd/dd/GateMatrix.hpp"
#include "qdd/ir/QuantumComputation.hpp"

#include <complex>
#include <random>
#include <vector>

namespace qdd::baseline {

/// Dense state-vector simulator: the straightforward exponential
/// representation the paper contrasts decision diagrams against
/// ("state vectors and operation matrices of a quantum system are
/// exponential in size", Sec. III). Serves as the reference oracle in tests
/// and as the baseline in the benchmark harness.
class DenseStateVector {
public:
  explicit DenseStateVector(std::size_t nqubits);
  /// Starts from a caller-provided amplitude vector (length 2^n).
  explicit DenseStateVector(std::vector<std::complex<double>> amplitudes);

  [[nodiscard]] std::size_t qubits() const noexcept { return nqubits; }
  [[nodiscard]] const std::vector<std::complex<double>>&
  amplitudes() const noexcept {
    return amps;
  }

  /// Applies a (multi-)controlled single-qubit gate.
  void applyGate(const GateMatrix& mat, Qubit target,
                 const QubitControls& controls = {});
  void applySwap(Qubit a, Qubit b, const QubitControls& controls = {});
  /// Applies a generic (uncontrolled) two-qubit gate; `t1` is the more
  /// significant matrix index.
  void applyTwoQubit(const TwoQubitGateMatrix& mat, Qubit t1, Qubit t0);

  /// Applies one IR operation (unitary standard operations and barriers).
  void apply(const ir::Operation& op);
  /// Runs a purely unitary circuit.
  void run(const ir::QuantumComputation& qc);

  [[nodiscard]] double norm() const;
  [[nodiscard]] double probabilityOfOne(Qubit q) const;
  /// Measures qubit `q`, collapsing the state; returns the outcome.
  int measure(Qubit q, std::mt19937_64& rng);
  /// Collapses qubit `q` to a given outcome (must have non-zero probability).
  void collapse(Qubit q, bool outcome);
  /// Samples a bitstring q_{n-1}...q_0 without collapsing.
  [[nodiscard]] std::string sample(std::mt19937_64& rng) const;

private:
  [[nodiscard]] bool controlsSatisfied(std::size_t index,
                                       const QubitControls& controls) const;

  std::size_t nqubits;
  std::vector<std::complex<double>> amps;
};

/// Dense unitary-matrix builder: multiplies gate matrices into a full
/// 2^n x 2^n system matrix (paper Sec. II, "determining U = U_{m-1} ... U_0").
/// Row-major storage; intended for n <= ~10.
class DenseUnitary {
public:
  explicit DenseUnitary(std::size_t nqubits);

  [[nodiscard]] std::size_t qubits() const noexcept { return nqubits; }
  [[nodiscard]] const std::vector<std::complex<double>>& matrix()
      const noexcept {
    return mat;
  }

  /// Left-multiplies the (controlled) gate onto the accumulated matrix.
  void applyGate(const GateMatrix& gate, Qubit target,
                 const QubitControls& controls = {});
  void applySwap(Qubit a, Qubit b, const QubitControls& controls = {});
  void apply(const ir::Operation& op);
  void run(const ir::QuantumComputation& qc);

  /// Max-norm distance to another unitary (for equivalence checking).
  [[nodiscard]] double distance(const DenseUnitary& other) const;

private:
  std::size_t nqubits;
  std::uint64_t dim;
  std::vector<std::complex<double>> mat;
};

} // namespace qdd::baseline
