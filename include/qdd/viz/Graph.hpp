#pragma once

#include "qdd/dd/Node.hpp"

#include <cstddef>
#include <vector>

namespace qdd::viz {

/// Flattened, exporter-friendly view of a decision diagram.
struct Graph {
  static constexpr std::size_t TERMINAL_ID = static_cast<std::size_t>(-1);

  struct Node {
    std::size_t id = 0;
    Qubit level = 0;
  };
  struct Edge {
    std::size_t from = 0;       ///< source node id
    std::size_t port = 0;       ///< successor index (0..radix-1)
    std::size_t to = 0;         ///< target node id or TERMINAL_ID
    ComplexValue weight;
    bool zeroStub = false;      ///< 0-stub (paper Ex. 6)
    /// Implicit identity levels skipped between source and target
    /// (identity-skipping matrix DDs, arXiv:2406.11959). 0 for vector DDs
    /// and for fully materialized matrix DDs.
    std::size_t skippedLevels = 0;
  };

  std::vector<Node> nodes;      ///< all non-terminal nodes, root first
  std::vector<Edge> edges;      ///< all edges including zero stubs
  ComplexValue rootWeight;      ///< weight of the root edge
  std::size_t rootNode = TERMINAL_ID;
  bool isMatrix = false;
  std::size_t radix = 2;        ///< successors per node (2 vector, 4 matrix)
  std::size_t span = 0;         ///< qubit levels covered, incl. skipped ones
  /// Implicit identity levels above the root node (matrix DDs only). For a
  /// non-zero terminal root this equals `span`: the DD is w * I_span.
  std::size_t rootSkippedLevels = 0;

  [[nodiscard]] bool empty() const noexcept {
    return rootNode == TERMINAL_ID;
  }
};

/// Flattens a vector DD (root first, breadth-first within levels).
Graph buildGraph(const vEdge& root);
/// Flattens a matrix DD; the span is inferred from the root node level, so
/// identity levels skipped above the root are not visible.
Graph buildGraph(const mEdge& root);
/// Flattens a matrix DD covering `span` qubit levels; levels skipped above
/// the root are recorded in `rootSkippedLevels`.
Graph buildGraph(const mEdge& root, std::size_t span);

} // namespace qdd::viz
