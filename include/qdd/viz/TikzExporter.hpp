#pragma once

#include "qdd/viz/DotExporter.hpp" // ExportOptions
#include "qdd/viz/Graph.hpp"

#include <string>

namespace qdd::viz {

/// Emits standalone LaTeX/TikZ code for a decision diagram in the exact
/// visual language of the paper's figures ("classic mode offers a look and
/// feel that is most similar to what is found in research papers",
/// Sec. IV-A): circular q_i nodes, a boxed 1-terminal, dashed edges for
/// weights != 1, short 0-stubs, and optional colored/thickness encoding.
class TikzExporter {
public:
  explicit TikzExporter(ExportOptions options = {}) : opts(options) {}

  /// TikZ picture body (usable inside any document).
  [[nodiscard]] std::string toTikz(const Graph& g) const;
  /// Complete compilable standalone .tex document.
  [[nodiscard]] std::string toStandaloneDocument(const Graph& g) const;
  void writeFile(const std::string& path, const Graph& g) const;

private:
  ExportOptions opts;
};

} // namespace qdd::viz
