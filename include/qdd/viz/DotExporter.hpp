#pragma once

#include "qdd/viz/Graph.hpp"

#include <iosfwd>
#include <string>

namespace qdd::viz {

/// Node rendering style (paper Sec. IV-A / Fig. 7).
enum class Style : std::uint8_t {
  /// "Look and feel that is most similar to what is found in research
  /// papers": circular nodes labelled q_i, dashed edges for weights != 1,
  /// 0-stubs retracted into small stubs.
  Classic,
  /// "More modern look ... where the connection to the underlying state
  /// vector is expressed in a more straight-forward fashion": box nodes with
  /// one cell per successor.
  Modern,
};

/// Options controlling decision-diagram export.
struct ExportOptions {
  Style style = Style::Classic;
  /// Annotate edges with their complex weights. "The explicit annotation of
  /// edge weights quickly requires lots of space"; disable to use color and
  /// thickness instead.
  bool edgeLabels = true;
  /// Encode the complex phase of each weight via the HLS color wheel
  /// (Fig. 7(b)-(c)).
  bool colored = false;
  /// Reflect the magnitude of each weight in the line thickness.
  bool magnitudeThickness = false;
  /// Label precision for weights.
  int precision = 4;
};

/// Emits Graphviz DOT for a (vector or matrix) decision diagram.
class DotExporter {
public:
  explicit DotExporter(ExportOptions options = {}) : opts(options) {}

  [[nodiscard]] std::string toDot(const Graph& g) const;
  void write(std::ostream& os, const Graph& g) const;

  /// Convenience: export to a .dot file.
  void writeFile(const std::string& path, const Graph& g) const;

private:
  ExportOptions opts;
};

} // namespace qdd::viz
