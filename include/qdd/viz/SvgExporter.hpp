#pragma once

#include "qdd/viz/DotExporter.hpp" // ExportOptions / Style
#include "qdd/viz/Graph.hpp"

#include <string>

namespace qdd::viz {

/// Self-contained SVG renderer for decision diagrams — no Graphviz
/// dependency; this is the drawing backend substituting the web tool's
/// canvas (see DESIGN.md). Nodes are placed on one horizontal band per
/// level q_{n-1} (top) ... q_0, with the terminal at the bottom, mirroring
/// the figures throughout the paper.
class SvgExporter {
public:
  explicit SvgExporter(ExportOptions options = {}) : opts(options) {}

  [[nodiscard]] std::string toSvg(const Graph& g) const;
  void writeFile(const std::string& path, const Graph& g) const;

private:
  ExportOptions opts;
};

} // namespace qdd::viz
