#pragma once

#include "qdd/viz/Graph.hpp"

#include <string>

namespace qdd::viz {

/// Serializes a decision diagram as JSON — the data interchange format a
/// web front-end (like the paper's tool) renders from. Every edge carries
/// its complex weight in cartesian and polar form plus the Fig. 7(b) HLS
/// color and a magnitude-based thickness, so a renderer needs no further
/// computation.
class JsonExporter {
public:
  explicit JsonExporter(int precision = 10) : precision(precision) {}

  [[nodiscard]] std::string toJson(const Graph& g) const;
  void writeFile(const std::string& path, const Graph& g) const;

private:
  int precision;
};

} // namespace qdd::viz
