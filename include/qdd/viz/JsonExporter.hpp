#pragma once

#include "qdd/viz/Graph.hpp"

#include <string>

namespace qdd::viz {

/// Escapes a string for embedding in a JSON string literal: quote,
/// backslash, and all control characters (U+0000..U+001F as \uXXXX or the
/// short forms \n \r \t \b \f). Shared by every JSON-emitting layer (the
/// exporters here and the qdd::service wire format).
[[nodiscard]] std::string jsonEscape(const std::string& s);

/// Formats a double as a JSON number with the given significant precision.
/// Non-finite values (NaN, +/-Inf) have no JSON representation and must
/// never be emitted bare — they serialize as `null`, which every strict
/// parser accepts and renderers can treat as "undefined".
[[nodiscard]] std::string jsonNumber(double v, int precision);

/// Serializes a decision diagram as JSON — the data interchange format a
/// web front-end (like the paper's tool) renders from. Every edge carries
/// its complex weight in cartesian and polar form plus the Fig. 7(b) HLS
/// color and a magnitude-based thickness, so a renderer needs no further
/// computation.
///
/// Two layouts: the default pretty-printed document (files, humans) and a
/// compact single-line mode for wire payloads (the qdd::service step
/// responses embed one DD per step) — same structure, no whitespace.
class JsonExporter {
public:
  explicit JsonExporter(int precision = 10, bool compact = false)
      : precision(precision), compact(compact) {}

  [[nodiscard]] std::string toJson(const Graph& g) const;
  void writeFile(const std::string& path, const Graph& g) const;

private:
  int precision;
  bool compact;
};

} // namespace qdd::viz
