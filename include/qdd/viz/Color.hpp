#pragma once

#include "qdd/complex/ComplexValue.hpp"

#include <cstdint>
#include <string>

namespace qdd::viz {

/// An sRGB color.
struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  [[nodiscard]] std::string toHex() const;
  friend bool operator==(const Rgb& a, const Rgb& b) = default;
};

/// Converts HLS (hue/lightness/saturation, each in [0,1]) to RGB — the
/// color space of the wheel shown in Fig. 7(b).
Rgb hlsToRgb(double hue, double lightness, double saturation);

/// Maps the complex phase of an edge weight onto the HLS color wheel used by
/// the tool (Fig. 7(b)): hue = phase / 2pi (phase normalized to [0, 2pi)),
/// full saturation, mid lightness. Phase 0 is red, pi/2 yellow-green-ish,
/// pi cyan, etc.
Rgb phaseToColor(double phase);

/// Convenience: color of a complex edge weight.
Rgb weightToColor(const ComplexValue& w);

/// Line thickness encoding the magnitude of an edge weight (Sec. IV-A:
/// "the magnitude of an edge weight can be reflected by the thickness of
/// the line"). Returns a stroke width in points within [min, min+span].
double magnitudeToThickness(double magnitude, double min = 0.5,
                            double span = 3.);

} // namespace qdd::viz
