#pragma once

#include "qdd/dd/Package.hpp"
#include "qdd/viz/Graph.hpp"

#include <complex>
#include <string>
#include <vector>

namespace qdd::viz {

/// Renders a state as a Dirac-notation sum, e.g.
/// "0.7071|00> + 0.7071|11>" (paper Ex. 1).
std::string toDirac(Package& pkg, const vEdge& state, int precision = 4,
                    double cutoff = 1e-9);

/// Pretty-prints a dense matrix in the omega notation of Fig. 5(c):
/// entries that are powers of omega = e^{i pi / 4^...} scaled by a common
/// 1/sqrt(2^n) factor print as "w^k". Falls back to numeric entries.
std::string formatMatrixOmega(const std::vector<std::complex<double>>& mat,
                              std::size_t n, int precision = 3);

/// Plain-text structural dump of a decision diagram (one line per node),
/// useful for terminal inspection and golden tests.
std::string asciiDump(const Graph& g, int precision = 4);

} // namespace qdd::viz
