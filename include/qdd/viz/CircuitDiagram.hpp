#pragma once

#include "qdd/ir/QuantumComputation.hpp"

#include <string>

namespace qdd::viz {

/// Renders a quantum circuit as ASCII art in the layout of the paper's
/// circuit figures (Fig. 1(c), Fig. 5): one horizontal wire per qubit with
/// the most significant qubit q_{n-1} on top, boxed gates, `*`/`o` for
/// positive/negative controls, `X` (+) for CNOT targets, `x` for SWAP,
/// `M` for measurements, `|` barriers drawn as dashed columns.
///
/// This is the console substitute for the web tool's algorithm/circuit
/// display (Sec. IV-B).
std::string circuitToAscii(const ir::QuantumComputation& qc,
                           std::size_t maxWidth = 120);

} // namespace qdd::viz
