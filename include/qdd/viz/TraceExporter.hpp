#pragma once

#include "qdd/sim/SimulationSession.hpp"

#include <cstdint>
#include <string>

namespace qdd::viz {

/// Options for simulation-trace export.
struct TraceOptions {
  /// Embed the full decision diagram (nodes/edges/colors) of every step;
  /// with false only Dirac strings and node counts are recorded.
  bool includeDiagrams = true;
  /// Random seed for measurement/reset outcomes.
  std::uint64_t seed = 0;
  int precision = 10;
};

/// Runs the circuit step by step and serializes the whole run as one JSON
/// document: per operation its description, the resulting state in Dirac
/// notation, the DD size, and (optionally) the full diagram in the
/// JsonExporter format. This is the data feed for the tool's automated
/// "slide show" mode (Sec. IV-B: "Start/Pause a slide show where the
/// simulation advances step-by-step in an automated fashion").
std::string exportSimulationTrace(const ir::QuantumComputation& qc,
                                  Package& pkg, TraceOptions options = {});

/// Convenience: writes the trace to a file.
void writeSimulationTrace(const ir::QuantumComputation& qc, Package& pkg,
                          const std::string& path, TraceOptions options = {});

} // namespace qdd::viz
