#pragma once

#include <atomic>

namespace qdd {

/// Tiny test-and-test-and-set spinlock for critical sections measured in
/// tens of nanoseconds (one shard probe, one pool allocation). Holders never
/// block, so spinning waiters make progress quickly; anything that can wait
/// longer than that belongs behind a std::mutex instead. Satisfies
/// BasicLockable, so std::lock_guard works.
class SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  [[nodiscard]] bool try_lock() noexcept {
    return !flag.test_and_set(std::memory_order_acquire);
  }

  void lock() noexcept {
    while (flag.test_and_set(std::memory_order_acquire)) {
      // Spin on a plain load until the lock looks free: keeps the cache
      // line shared instead of bouncing it with failed RMWs.
      while (flag.test(std::memory_order_relaxed)) {
      }
    }
  }

  void unlock() noexcept { flag.clear(std::memory_order_release); }

private:
  std::atomic_flag flag;
};

} // namespace qdd
