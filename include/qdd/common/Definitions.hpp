#pragma once

#include <cstdint>
#include <vector>

namespace qdd {

/// Qubit index / decision-diagram level. Level 0 is the least-significant
/// qubit q0; the paper uses big-endian labelling |q_{n-1} ... q_0>.
using Qubit = std::int16_t;

/// Level carried by terminal DD nodes.
inline constexpr Qubit TERMINAL_LEVEL = -1;

/// A (possibly negated) control qubit of a quantum operation.
struct QubitControl {
  Qubit qubit = 0;
  bool positive = true; ///< false: negative control (active on |0>)

  friend bool operator<(const QubitControl& a, const QubitControl& b) {
    return a.qubit < b.qubit;
  }
  friend bool operator==(const QubitControl& a,
                         const QubitControl& b) = default;
};
using QubitControls = std::vector<QubitControl>;

} // namespace qdd
