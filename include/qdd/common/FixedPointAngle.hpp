#pragma once

#include "qdd/complex/ComplexValue.hpp"

#include <cmath>
#include <cstdint>
#include <functional>

namespace qdd {

/// Fixed-point representation of a rotation angle modulo 4*pi — the shared
/// periodicity of every parameterized standard gate (RX/RY/RZ have period
/// 4*pi; P/U2/U3 angles have period 2*pi and are a fortiori 4*pi-periodic).
///
/// The angle is quantized to 2^40 units per period and wrapped into
/// [0, 2^40), so equality and hashing are exact integer operations. Unlike a
/// double-based `fmod` canonicalization, the wrap has no representative-
/// boundary problem: angles a hair below 4*pi and a hair above 0 land on
/// neighboring (or equal) units instead of opposite ends of the domain.
/// The resolution, 4*pi / 2^40 ≈ 1.1e-11 rad, is far below any physically
/// meaningful angle difference; a quantization-boundary miss merely costs a
/// cache miss, never a wrong result.
class FixedPointAngle {
public:
  /// Units per 4*pi period.
  static constexpr std::int64_t UNITS = std::int64_t{1} << 40;

  constexpr FixedPointAngle() noexcept = default;

  explicit FixedPointAngle(double radians) noexcept {
    const double period = 4. * PI;
    const double turns = radians / period;
    // wrap to [0, 1) in turns before scaling: keeps the rounding step in a
    // range where a double still has sub-unit resolution
    const double wrapped = turns - std::floor(turns);
    units = static_cast<std::int64_t>(
        std::llround(wrapped * static_cast<double>(UNITS)));
    if (units >= UNITS) { // wrapped ~1.0 rounds up to a full period
      units -= UNITS;
    }
  }

  [[nodiscard]] constexpr std::int64_t raw() const noexcept { return units; }

  /// Representative angle in [0, 4*pi).
  [[nodiscard]] double radians() const noexcept {
    return static_cast<double>(units) / static_cast<double>(UNITS) * 4. * PI;
  }

  friend constexpr bool operator==(FixedPointAngle a,
                                   FixedPointAngle b) noexcept = default;

private:
  std::int64_t units = 0;
};

} // namespace qdd

template <> struct std::hash<qdd::FixedPointAngle> {
  std::size_t operator()(const qdd::FixedPointAngle& a) const noexcept {
    return std::hash<std::int64_t>{}(a.raw());
  }
};
