#pragma once

#include "qdd/dd/GateMatrix.hpp"

#include <string>
#include <vector>

namespace qdd::sim {

/// A single-qubit quantum channel in Kraus form:
/// rho -> sum_k E_k rho E_k^dagger with sum_k E_k^dagger E_k = I.
///
/// Channels are the payoff of the density-matrix representation
/// (DensityMatrixSimulator): they cannot be expressed on the paper's
/// pure-state decision diagrams at all.
struct KrausChannel {
  std::string name;
  std::vector<GateMatrix> operators;

  /// Verifies the completeness relation sum E^dagger E = I (within tol).
  [[nodiscard]] bool isTracePreserving(double tol = 1e-9) const;
};

/// Depolarizing channel: with probability p the qubit is replaced by the
/// maximally mixed state.
KrausChannel depolarizing(double p);
/// Amplitude damping (T1 decay): |1> decays to |0> with probability gamma.
KrausChannel amplitudeDamping(double gamma);
/// Phase damping (T2 dephasing) with probability lambda.
KrausChannel phaseDamping(double lambda);
/// Bit flip: X applied with probability p.
KrausChannel bitFlip(double p);
/// Phase flip: Z applied with probability p.
KrausChannel phaseFlip(double p);

/// Simple gate-level noise model: after every gate, the listed channels are
/// applied to each qubit the gate touched.
struct NoiseModel {
  std::vector<KrausChannel> afterGate;

  [[nodiscard]] bool empty() const noexcept { return afterGate.empty(); }
};

} // namespace qdd::sim
