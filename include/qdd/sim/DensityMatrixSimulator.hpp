#pragma once

#include "qdd/dd/Package.hpp"
#include "qdd/ir/QuantumComputation.hpp"
#include "qdd/sim/NoiseModel.hpp"

#include <map>
#include <string>
#include <vector>

namespace qdd::sim {

/// Exact mixed-state simulation using matrix decision diagrams.
///
/// The paper's tool handles reset probabilistically because "the partial
/// trace maps pure states to mixed states and can thus in general not be
/// represented by the same kind of decision diagram used for representing
/// state vectors" (Sec. IV-B). This simulator is the *other* branch of that
/// trade-off: it represents the density matrix rho as a matrix DD, applies
/// unitaries as rho -> U rho U^dagger, realizes reset exactly
/// (rho -> P0 rho P0 + X P1 rho P1 X), and tracks classical measurement
/// outcomes by branching into an ensemble — yielding exact outcome
/// distributions where the pure-state session must sample.
class DensityMatrixSimulator {
public:
  DensityMatrixSimulator(const ir::QuantumComputation& circuit,
                         Package& package);
  ~DensityMatrixSimulator();

  DensityMatrixSimulator(const DensityMatrixSimulator&) = delete;
  DensityMatrixSimulator& operator=(const DensityMatrixSimulator&) = delete;

  /// Installs a gate-level noise model: after every gate, the model's
  /// channels are applied to each touched qubit. Must be called before
  /// run(). Channels must be trace preserving.
  void setNoiseModel(NoiseModel model);

  /// Runs the complete circuit.
  void run();

  /// Probability of reading |1> when measuring qubit q of the final mixture.
  [[nodiscard]] double probabilityOfOne(Qubit q);

  /// Exact probability distribution over classical register contents
  /// (bitstring c_{m-1}...c_0 -> probability). Empty map if the circuit has
  /// no classical bits.
  [[nodiscard]] std::map<std::string, double> classicalDistribution();

  /// The (normalized) density matrix of the full mixture.
  [[nodiscard]] mEdge densityMatrix();

  /// Purity tr(rho^2): 1 for pure states, < 1 for proper mixtures.
  [[nodiscard]] double purity();

  /// Number of ensemble branches (2^k after k binary measurements, minus
  /// pruned zero-probability branches).
  [[nodiscard]] std::size_t numBranches() const noexcept {
    return branches.size();
  }

private:
  struct Branch {
    mEdge rho;                  ///< unnormalized: trace = branch probability
    std::vector<bool> classicals;
  };

  void applyUnitary(const ir::Operation& op, Branch& branch);
  void applyReset(Qubit q, Branch& branch);
  void applyChannel(const KrausChannel& channel, Qubit q, Branch& branch);
  void applyNoiseAfter(const ir::Operation& op, Branch& branch);
  /// Splits `branch` on measuring `q`; returns the new branches (zero
  /// probability branches are dropped).
  std::vector<Branch> applyMeasure(const ir::NonUnitaryOperation& op,
                                   Branch branch);

  [[nodiscard]] mEdge projector(Qubit q, bool outcome);

  ir::QuantumComputation qc;
  Package& pkg;
  std::vector<Branch> branches;
  NoiseModel noise;
  bool executed = false;
};

} // namespace qdd::sim
