#pragma once

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/bridge/GateDDCache.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/ir/QuantumComputation.hpp"

#include <atomic>
#include <functional>
#include <random>
#include <vector>

namespace qdd::sim {

/// Interactive circuit-simulation session replicating the behaviour of the
/// tool's simulation tab (paper Sec. IV-B): step forward/backward through the
/// operations, run to the end (stopping at "special operations"), and
/// resolve measurement/reset outcomes either randomly or through a
/// caller-provided chooser (the tool's pop-up dialog).
class SimulationSession {
public:
  /// Invoked when a qubit about to be measured/reset is in superposition;
  /// receives the qubit and the probabilities of reading |0> and |1> and
  /// returns the chosen outcome (0 or 1). Mirrors the pop-up dialog of the
  /// tool ("displays the probabilities for obtaining |0> and |1>").
  using OutcomeChooser = std::function<int(Qubit, double p0, double p1)>;

  SimulationSession(const ir::QuantumComputation& circuit, Package& package,
                    std::uint64_t seed = 0);
  ~SimulationSession();

  SimulationSession(const SimulationSession&) = delete;
  SimulationSession& operator=(const SimulationSession&) = delete;

  /// Replaces the random default with an explicit outcome chooser.
  void setOutcomeChooser(OutcomeChooser chooser) {
    outcomeChooser = std::move(chooser);
  }

  // --- inspection ---------------------------------------------------------

  [[nodiscard]] const vEdge& state() const noexcept { return current; }
  [[nodiscard]] const ir::QuantumComputation& circuit() const noexcept {
    return qc;
  }
  /// Index of the operation the next stepForward() would apply.
  [[nodiscard]] std::size_t position() const noexcept { return pos; }
  [[nodiscard]] std::size_t numOperations() const noexcept {
    return qc.size();
  }
  [[nodiscard]] bool atEnd() const noexcept { return pos == qc.size(); }
  [[nodiscard]] bool atStart() const noexcept { return pos == 0; }
  /// The operation the next stepForward() applies (nullptr at the end).
  [[nodiscard]] const ir::Operation* nextOperation() const;
  [[nodiscard]] const std::vector<bool>& classicalBits() const noexcept {
    return classicals;
  }

  /// Current DD size and the peak over the whole session.
  [[nodiscard]] std::size_t currentNodes() const;
  [[nodiscard]] std::size_t peakNodes() const noexcept { return peak; }
  /// DD size after each applied operation (for size-over-time plots).
  [[nodiscard]] const std::vector<std::size_t>& nodeHistory() const noexcept {
    return history;
  }
  /// Table-pressure snapshot after each applied operation (same indexing as
  /// `nodeHistory`), so steppers can plot cache/GC behavior over time.
  [[nodiscard]] const std::vector<mem::TablePressure>&
  pressureHistory() const noexcept {
    return pressures;
  }

  /// Per-step profile recorded for every applied operation (same indexing as
  /// `nodeHistory`): wall time of the step and the active-nodes-per-level
  /// breakdown of the resulting DD. Always captured — it costs one clock
  /// read and reuses the node walk `nodeHistory` needs anyway — and exported
  /// by the trace exporter and the observability layer.
  struct StepProfile {
    double durationUs = 0.;
    std::vector<std::size_t> nodesPerLevel;
  };
  [[nodiscard]] const std::vector<StepProfile>&
  stepProfiles() const noexcept {
    return profiles;
  }

  /// Apply engine this session runs under (from the global mode at
  /// construction) and the session's gate-DD cache — exposed so steppers and
  /// qdd-tool can report fast-path coverage and cache hit ratios.
  [[nodiscard]] bridge::ApplyMode applyMode() const noexcept { return mode; }
  [[nodiscard]] const bridge::GateDDCache& gateCache() const noexcept {
    return cache;
  }

  // --- navigation (the -> / <- / |<< / >>| buttons) -------------------------

  /// Applies the next operation; returns false at the end of the circuit.
  bool stepForward();
  /// Restores the state before the previously applied operation (works
  /// across measurements/resets by snapshotting). Returns false at start.
  bool stepBackward();
  /// Steps forward until the end, stopping after "special operations"
  /// (barrier breakpoints, measurements, resets). Returns steps taken.
  ///
  /// `cancel`, when non-null, is polled before every gate: once it reads
  /// true the run stops at that gate boundary (the already applied prefix
  /// stays applied). This is how the qdd::service layer enforces
  /// per-request deadlines — the flag is a plain atomic so this layer stays
  /// independent of qdd::exec (see exec::CancellationToken::flag()).
  std::size_t runToEnd(const std::atomic<bool>* cancel = nullptr);
  /// Rewinds to the initial state. Returns steps taken.
  std::size_t runToStart();

  // --- spill/restore (qdd::service session spill tier) ---------------------

  /// Adopts `state` (already interned in this session's package) as the
  /// current state at `position`, with classical bits and peak carried
  /// over — the restore half of a disk-spill round trip. Snapshot history
  /// is not part of the spill image: stepBackward() returns false until
  /// the next forward step, and runToStart() rewinds by rebuilding the
  /// zero state instead of replaying snapshots.
  void restoreTo(const vEdge& state, std::size_t position,
                 std::vector<bool> classicalBits, std::size_t peakNodes);

private:
  /// True if the operation acts as a breakpoint for runToEnd().
  static bool isSpecial(const ir::Operation& op);
  void applyUnitary(const ir::Operation& op);
  void applyMeasurement(const ir::NonUnitaryOperation& op);
  void applyReset(const ir::NonUnitaryOperation& op);
  int chooseOutcome(Qubit q, double p1);
  void pushSnapshot();

  struct Snapshot {
    vEdge state;
    std::vector<bool> classicals;
  };

  ir::QuantumComputation qc; ///< owned copy: sessions outlive caller scopes
  Package& pkg;
  bridge::ApplyMode mode = bridge::globalApplyMode();
  bridge::GateDDCache cache;
  vEdge current;
  std::vector<bool> classicals;
  std::vector<Snapshot> snapshots; ///< one per applied operation
  std::size_t pos = 0;
  std::mt19937_64 rng;
  OutcomeChooser outcomeChooser;
  std::size_t peak = 0;
  std::vector<std::size_t> history;
  std::vector<mem::TablePressure> pressures;
  std::vector<StepProfile> profiles;
};

/// Result of repeated (weak) simulation.
struct SamplingResult {
  std::map<std::string, std::size_t> counts; ///< bitstring -> occurrences
  std::size_t shots = 0;
};

/// Reusable sampler bound to one circuit and one package. For circuits whose
/// only non-unitary operations are final measurements it pays the strong
/// simulation once at construction and keeps the final state referenced, so
/// every subsequent sample() call is pure non-destructive DD sampling — the
/// engine behind chunked parallel sampling (qdd::exec::sampleParallel), where
/// one worker serves many shot chunks from the same final state. Dynamic
/// circuits (mid-circuit measurements, resets, classically controlled
/// operations) fall back to per-shot execution inside sample().
///
/// sample(shots, seed) depends only on its arguments (and the circuit), not
/// on previous calls: each call seeds a fresh RNG stream.
class CircuitSampler {
public:
  /// The package must outlive the sampler; the sampler keeps its final-state
  /// reference until destruction.
  CircuitSampler(const ir::QuantumComputation& circuit, Package& package);
  ~CircuitSampler();

  CircuitSampler(const CircuitSampler&) = delete;
  CircuitSampler& operator=(const CircuitSampler&) = delete;

  [[nodiscard]] bool isDynamicCircuit() const noexcept { return dynamic; }

  /// Samples `shots` measurement outcomes with an RNG seeded by `seed`.
  [[nodiscard]] SamplingResult sample(std::size_t shots, std::uint64_t seed);

private:
  ir::QuantumComputation qc; ///< owned copy, like SimulationSession
  Package& pkg;
  /// Final measurement map qubit -> classical bit.
  std::vector<std::pair<Qubit, std::size_t>> measurements;
  bool dynamic = false;
  vEdge finalState{}; ///< referenced final state (static circuits only)
};

/// Samples `shots` measurement outcomes from the circuit ([16]-style weak
/// simulation): for circuits whose only non-unitary operations are final
/// measurements, the state is simulated once and then sampled repeatedly
/// (non-destructively); dynamic circuits (mid-circuit measurements, resets,
/// classically controlled operations) fall back to per-shot execution.
///
/// The returned bitstrings run over the classical bits c_{m-1}...c_0 if the
/// circuit measures, and over all qubits q_{n-1}...q_0 otherwise.
SamplingResult sampleCircuit(const ir::QuantumComputation& qc,
                             std::size_t shots, std::uint64_t seed = 0);

/// Same, but on a caller-provided package (the per-worker package in batch
/// execution) instead of a package of its own.
SamplingResult sampleCircuit(const ir::QuantumComputation& qc,
                             std::size_t shots, std::uint64_t seed,
                             Package& pkg);

} // namespace qdd::sim
