#pragma once

// qdd::service — request/session counters behind one mutex. The service
// keeps its own metrics (independent of the optional qdd::obs registry) so
// /metrics always works and tests can assert on exact counter values:
// deadline cancellations, drain rejections, eviction counts.

#include "qdd/service/Json.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qdd::service {

class ServiceMetrics {
public:
  /// Records one routed request (pattern is the matched route, e.g.
  /// "/v1/sessions/{id}/step", so metrics aggregate per route).
  void recordRequest(const std::string& pattern, int status, double ms);
  /// Records a transport-level rejection (malformed / oversize / 501).
  void recordTransportError(int status);

  void countSessionCreated() { bump(sessionsCreatedN); }
  void countSessionEvicted() { bump(sessionsEvictedN); }
  void countDeadlineTimeout() { bump(deadlineTimeoutsN); }
  void countDrainRejected() { bump(drainRejectedN); }

  [[nodiscard]] std::size_t requests() const;
  [[nodiscard]] std::size_t statusCount(int status) const;
  [[nodiscard]] std::size_t deadlineTimeouts() const;
  [[nodiscard]] std::size_t sessionsCreated() const;
  [[nodiscard]] std::size_t sessionsEvicted() const;
  [[nodiscard]] std::size_t drainRejected() const;

  /// Full snapshot:
  /// {"requests":n,"byStatus":{...},"routes":{pattern:{count,totalMs,maxMs,
  ///  p50Ms,p95Ms}},"sessionsCreated":...,"sessionsEvicted":...,
  ///  "deadlineTimeouts":...,"drainRejected":...}
  [[nodiscard]] json::Value toJson() const;

private:
  /// Latency samples per route, capped; percentiles are over the cap window.
  static constexpr std::size_t MAX_SAMPLES = 4096;

  struct Route {
    std::size_t count = 0;
    double totalMs = 0.;
    double maxMs = 0.;
    std::vector<double> samples;
  };

  void bump(std::size_t& counter) {
    const std::lock_guard<std::mutex> lock(mutex);
    ++counter;
  }

  mutable std::mutex mutex;
  std::size_t total = 0;
  std::map<int, std::size_t> byStatus;
  std::map<std::string, Route> routes;
  std::size_t sessionsCreatedN = 0;
  std::size_t sessionsEvictedN = 0;
  std::size_t deadlineTimeoutsN = 0;
  std::size_t drainRejectedN = 0;
};

} // namespace qdd::service
