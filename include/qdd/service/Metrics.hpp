#pragma once

// qdd::service — request/session counters behind one mutex. The service
// keeps its own metrics (independent of the optional qdd::obs registry) so
// /metrics always works and tests can assert on exact counter values:
// deadline cancellations, drain rejections, eviction counts.
//
// Latency is tracked in fixed log-spaced histograms (Histogram.hpp), one
// per route plus one aggregate: bounded memory under unbounded request
// counts, and /metrics summaries come from an O(buckets) scan instead of
// copying and sorting sample vectors under the lock — a scrape never
// stalls the request path.

#include "qdd/service/Histogram.hpp"
#include "qdd/service/Json.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace qdd::service {

class ServiceMetrics {
public:
  /// Records one routed request (pattern is the matched route, e.g.
  /// "/v1/sessions/{id}/step", so metrics aggregate per route).
  void recordRequest(const std::string& pattern, int status, double ms);
  /// Records a transport-level rejection (malformed / oversize / 501).
  void recordTransportError(int status);

  void countSessionCreated() { bump(sessionsCreatedN); }
  void countSessionEvicted() { bump(sessionsEvictedN); }
  void countDeadlineTimeout() { bump(deadlineTimeoutsN); }
  void countDrainRejected() { bump(drainRejectedN); }

  [[nodiscard]] std::size_t requests() const;
  [[nodiscard]] std::size_t statusCount(int status) const;
  [[nodiscard]] std::size_t deadlineTimeouts() const;
  [[nodiscard]] std::size_t sessionsCreated() const;
  [[nodiscard]] std::size_t sessionsEvicted() const;
  [[nodiscard]] std::size_t drainRejected() const;

  /// Full snapshot:
  /// {"requests":n,"byStatus":{...},"routes":{pattern:{count,totalMs,maxMs,
  ///  p50Ms,p95Ms}},"sessionsCreated":...,"sessionsEvicted":...,
  ///  "deadlineTimeouts":...,"drainRejected":...}
  [[nodiscard]] json::Value toJson() const;

  /// Prometheus text exposition of everything this object owns: request /
  /// status / route counters, the aggregate latency histogram (cumulative
  /// `le` buckets, in seconds per Prometheus convention), per-route latency
  /// summary gauges, and the service counters. Api::metricsDoc appends the
  /// session-store and DD-package gauges it alone can see.
  [[nodiscard]] std::string prometheus() const;

private:
  struct Route {
    std::size_t count = 0;
    double totalMs = 0.;
    double maxMs = 0.;
    LatencyHistogram latency;
  };

  void bump(std::size_t& counter) {
    const std::lock_guard<std::mutex> lock(mutex);
    ++counter;
  }

  mutable std::mutex mutex;
  std::size_t total = 0;
  std::map<int, std::size_t> byStatus;
  std::map<std::string, Route> routes;
  LatencyHistogram allRoutes; ///< aggregate over every routed request
  std::size_t sessionsCreatedN = 0;
  std::size_t sessionsEvictedN = 0;
  std::size_t deadlineTimeoutsN = 0;
  std::size_t drainRejectedN = 0;
};

/// Helpers shared by the Prometheus emitters in Metrics.cpp and Api.cpp.
namespace prom {

/// Escapes a label value (backslash, quote, newline).
[[nodiscard]] std::string escapeLabel(const std::string& value);
/// Locale-independent %.9g double formatting ("." decimal point).
[[nodiscard]] std::string number(double value);
/// Appends "# HELP name help\n# TYPE name type\n".
void family(std::string& out, const char* name, const char* type,
            const char* help);
/// Appends one sample line: name{labels} value. `labels` is the raw
/// rendered label list without braces ("" for none).
void sample(std::string& out, const char* name, const std::string& labels,
            double value);

} // namespace prom

} // namespace qdd::service
