#pragma once

// qdd::service — the live session registry. Each entry owns its private
// dd::Package plus one simulation OR verification session on top of it
// (packages are not thread-safe, so a per-entry mutex serializes every
// request touching the same session; different sessions proceed in
// parallel on different pool workers, mirroring the one-package-per-worker
// design of qdd::exec).
//
// Admission and lifetime: a hard cap on concurrent sessions (create fails
// once full -> the API answers 429) and TTL eviction of idle sessions in
// least-recently-used order. Evicted packages fold their statistics() into
// a cumulative registry surfaced by /metrics, so table/cache behavior is
// not lost with the session.

#include "qdd/dd/Package.hpp"
#include "qdd/mem/StatsRegistry.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/verify/VerificationSession.hpp"

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qdd::service {

class SessionStore {
public:
  struct Entry {
    // id/kind/name/qubits are filled in before publish() and immutable
    // afterwards, so they may be read without taking the entry mutex.
    std::string id;
    std::string kind; ///< "simulation" | "verification"
    std::string name; ///< circuit name(s), for listings
    std::size_t qubits = 0;
    /// Serializes all request processing on this session (the package
    /// underneath is single-threaded).
    std::mutex mutex;
    std::unique_ptr<Package> package;
    std::unique_ptr<sim::SimulationSession> simulation;
    std::unique_ptr<verify::VerificationSession> verification;
    std::chrono::steady_clock::time_point lastUsed;
    std::size_t requests = 0;
  };

  /// `ttlMs <= 0` disables TTL eviction.
  SessionStore(std::size_t maxSessions, std::int64_t ttlMs);

  /// Reserves a session slot and assigns an id ("s1", "s2", ...) WITHOUT
  /// making the entry visible to lookups. The caller constructs
  /// package/session on the still-private entry, then either publish()es it
  /// or abandon()s the reservation — so the map only ever holds fully
  /// constructed sessions. Returns nullptr when the store is full even
  /// after evicting expired sessions.
  std::shared_ptr<Entry> create(std::string kind);

  /// Inserts a fully constructed entry from create() into the map, making
  /// it visible to find()/list().
  void publish(const std::shared_ptr<Entry>& entry);

  /// Releases the slot reserved by create() when construction failed. The
  /// entry was never visible; any partially built package folds its stats.
  void abandon(const std::shared_ptr<Entry>& entry);

  /// Looks up a session and refreshes its LRU stamp; nullptr when absent.
  std::shared_ptr<Entry> find(const std::string& id);

  /// Removes a session (folding its stats); false when absent.
  bool erase(const std::string& id);

  /// Evicts every session idle longer than the TTL (LRU order); returns the
  /// number evicted. Called internally on create(), exposed for tests.
  std::size_t evictExpired();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t created() const;
  [[nodiscard]] std::size_t evicted() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return maxSessions; }

  /// (id, kind, name) of all live sessions, sorted by id.
  [[nodiscard]] std::vector<std::shared_ptr<Entry>> list() const;

  /// Cumulative statistics of all evicted/erased packages.
  [[nodiscard]] mem::StatsRegistry retiredStats() const;

private:
  void retire(const std::shared_ptr<Entry>& entry);

  const std::size_t maxSessions;
  const std::int64_t ttlMs;

  mutable std::mutex mutex; ///< guards the map and counters (not entries)
  std::map<std::string, std::shared_ptr<Entry>> entries;
  std::size_t pendingN = 0; ///< slots reserved by create(), not yet published
  std::size_t nextId = 1;
  std::size_t createdN = 0;
  std::size_t evictedN = 0;
  mem::StatsRegistry retired;
};

} // namespace qdd::service
