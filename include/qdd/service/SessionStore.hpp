#pragma once

// qdd::service — the live session registry. Each entry owns its private
// dd::Package plus one simulation OR verification session on top of it
// (packages are not thread-safe, so a per-entry mutex serializes every
// request touching the same session; different sessions proceed in
// parallel on different pool workers, mirroring the one-package-per-worker
// design of qdd::exec).
//
// Sharding: entries are distributed over a power-of-two number of shards
// by session-id hash (FNV-1a). Shard selection is lock-free; each shard
// has its own mutex, entry map, and retired mem::StatsRegistry, so
// create/find/evict on different sessions rarely contend. Lock order
// invariant: a shard mutex is never taken while holding an entry mutex
// *and vice versa* — stats folding collects under one lock, releases,
// then merges under the other.
//
// Spill tier: when a spill directory is configured, cold sessions are
// serialized (dd::Serialization text round-trip) to disk and their
// package + session destroyed — an idle session then costs one file plus
// a small in-RAM image (circuit IR, positions, classical bits) instead of
// a full DD package. The next touch transparently restores through
// ensureResident(); the per-entry mutex doubles as the in-flight-restore
// guard, so concurrent touches restore exactly once. Sessions spill when
// idle past `spillAfterMs`, or coldest-first when the resident count
// exceeds `maxResident` (the budget).
//
// Admission and lifetime: a hard cap on concurrent sessions (create fails
// once full -> the API answers 429) and TTL eviction of idle sessions in
// least-recently-used order. Evicted/spilled packages fold their
// statistics() into the cumulative per-shard registries surfaced by
// /metrics, so table/cache behavior is not lost with the session.

#include "qdd/dd/Package.hpp"
#include "qdd/ir/QuantumComputation.hpp"
#include "qdd/mem/StatsRegistry.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/verify/VerificationSession.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace qdd::service {

/// Thrown by ensureResident() when a spilled session cannot be brought
/// back (unreadable/corrupt spill file). The API maps it to a 500.
struct RestoreError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct SessionStoreOptions {
  std::size_t maxSessions = 16;
  /// <= 0 disables TTL eviction.
  std::int64_t ttlMs = 600000;
  /// Rounded up to a power of two, clamped to [1, 256].
  std::size_t shards = 8;
  /// Directory for spill files; empty disables the spill tier.
  std::string spillDir;
  /// Sessions idle longer than this are spill candidates on the next
  /// evictExpired() pass. <= 0 disables idle-driven spilling (budget
  /// pressure via maxResident still spills).
  std::int64_t spillAfterMs = 0;
  /// Soft cap on sessions holding a live package; beyond it the coldest
  /// sessions are spilled. 0 means unlimited.
  std::size_t maxResident = 0;
};

class SessionStore {
public:
  /// The in-RAM remainder of a spilled session: everything needed to
  /// rebuild package + session except the DD itself (which lives in the
  /// spill file). Deliberately small — circuit IR, cursor positions,
  /// classical bits — so 10k idle sessions fit in a few MiB.
  struct SpillImage {
    std::string path;
    std::size_t bytes = 0; ///< spill file size
    std::unique_ptr<ir::QuantumComputation> circuit; ///< simulation
    std::unique_ptr<ir::QuantumComputation> left;    ///< verification
    std::unique_ptr<ir::QuantumComputation> right;
    std::size_t position = 0;
    std::size_t posL = 0;
    std::size_t posR = 0;
    std::vector<bool> classicals;
    std::size_t peak = 0;
  };

  struct Entry {
    // id/kind/name/qubits/seed are filled in before publish() and
    // immutable afterwards, so they may be read without the entry mutex.
    std::string id;
    std::string kind; ///< "simulation" | "verification"
    std::string name; ///< circuit name(s), for listings
    std::size_t qubits = 0;
    std::uint64_t seed = 0; ///< RNG seed, re-applied on restore
    /// Serializes all request processing on this session (the package
    /// underneath is single-threaded) and doubles as the restore-once
    /// guard: restores happen under this mutex.
    std::mutex mutex;
    std::unique_ptr<Package> package;
    std::unique_ptr<sim::SimulationSession> simulation;
    std::unique_ptr<verify::VerificationSession> verification;
    /// Present exactly while `spilled` is true; guarded by `mutex`.
    std::unique_ptr<SpillImage> spill;
    /// Atomic so LRU/spill scans can read it without the entry mutex.
    std::atomic<bool> spilled{false};
    /// LRU stamp (steady-clock ms); atomic for lock-free refresh in find()
    /// and lock-free scans in eviction/spill passes.
    std::atomic<std::int64_t> lastUsedMs{0};
    std::size_t requests = 0; ///< guarded by `mutex`
  };

  explicit SessionStore(SessionStoreOptions options);
  /// Legacy convenience: capacity + TTL, default sharding, no spill tier.
  SessionStore(std::size_t maxSessions, std::int64_t ttlMs);

  /// Replaces the default plain-Package factory used when restoring a
  /// spilled session (the API installs one that attaches the shared
  /// forker, matching createSession's construction).
  void setPackageFactory(
      std::function<std::unique_ptr<Package>(std::size_t qubits)> factory) {
    packageFactory = std::move(factory);
  }

  /// Reserves a session slot and assigns an id ("s1", "s2", ...) WITHOUT
  /// making the entry visible to lookups. The caller constructs
  /// package/session on the still-private entry, then either publish()es it
  /// or abandon()s the reservation — so the map only ever holds fully
  /// constructed sessions. Returns nullptr when the store is full even
  /// after evicting expired sessions.
  std::shared_ptr<Entry> create(std::string kind);

  /// Inserts a fully constructed entry from create() into its shard,
  /// making it visible to find()/list(), then enforces the spill budget.
  void publish(const std::shared_ptr<Entry>& entry);

  /// Releases the slot reserved by create() when construction failed. The
  /// entry was never visible; any partially built package folds its stats.
  void abandon(const std::shared_ptr<Entry>& entry);

  /// Looks up a session and refreshes its LRU stamp; nullptr when absent.
  /// The entry may be spilled — callers that need the live session must
  /// lock the entry mutex and call ensureResident().
  std::shared_ptr<Entry> find(const std::string& id);

  /// Restores `entry` from its spill file if (and only if) it is spilled.
  /// REQUIRES the caller to hold entry->mutex — that is what makes
  /// concurrent touches restore exactly once. Throws RestoreError when the
  /// spill file is unreadable or corrupt (the entry stays spilled).
  void ensureResident(Entry& entry);

  /// Removes a session (folding its stats, deleting any spill file);
  /// false when absent.
  bool erase(const std::string& id);

  /// Evicts every session idle longer than the TTL (LRU order), spills
  /// sessions idle past spillAfterMs, and enforces the resident budget.
  /// Returns the number evicted. Called internally on create(), exposed
  /// for tests.
  std::size_t evictExpired();

  /// Spills one session now (test hook / admin). False when the session
  /// is absent, already spilled, busy, or the spill tier is disabled.
  bool spillNow(const std::string& id);

  /// Spills coldest resident sessions until residentCount() <=
  /// maxResident. Returns the number spilled. No-op when the spill tier
  /// or the budget is disabled.
  std::size_t enforceBudget();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t created() const;
  [[nodiscard]] std::size_t evicted() const;
  [[nodiscard]] std::size_t capacity() const noexcept {
    return options.maxSessions;
  }

  // --- spill-tier observability -------------------------------------------

  [[nodiscard]] bool spillEnabled() const noexcept {
    return !options.spillDir.empty();
  }
  [[nodiscard]] std::size_t residentCount() const noexcept {
    return residentN.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t spilledCount() const noexcept {
    return spilledNowN.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t spilledTotal() const noexcept {
    return spilledTotalN.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t restores() const noexcept {
    return restoresN.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t restoreFailures() const noexcept {
    return restoreFailuresN.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t spillBytesTotal() const noexcept {
    return spillBytesN.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t shardCount() const noexcept {
    return shards.size();
  }
  /// Per-shard entry counts (for the per-shard occupancy gauges).
  [[nodiscard]] std::vector<std::size_t> shardSizes() const;

  /// (id, kind, name) of all live sessions, sorted by id.
  [[nodiscard]] std::vector<std::shared_ptr<Entry>> list() const;

  /// Cumulative statistics of all evicted/erased/spilled packages,
  /// merged across shards.
  [[nodiscard]] mem::StatsRegistry retiredStats() const;

private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, std::shared_ptr<Entry>> entries;
    mem::StatsRegistry retired;
  };

  [[nodiscard]] Shard& shardOf(const std::string& id);
  [[nodiscard]] const Shard& shardOf(const std::string& id) const;
  [[nodiscard]] static std::int64_t nowMs();

  void retire(const std::shared_ptr<Entry>& entry);
  /// try_locks the entry and spills it; false when busy or not spillable.
  bool trySpill(const std::shared_ptr<Entry>& entry);
  /// Spills with entry->mutex held; folds the package stats into `stats`.
  bool spillLocked(Entry& entry, mem::StatsRegistry& stats);

  const SessionStoreOptions options;

  std::vector<std::unique_ptr<Shard>> shards;
  std::function<std::unique_ptr<Package>(std::size_t)> packageFactory;

  std::mutex admissionMutex; ///< guards the capacity check + pendingN
  std::size_t pendingN = 0;  ///< slots reserved by create(), not published

  std::atomic<std::size_t> nextId{1};
  std::atomic<std::size_t> liveN{0}; ///< published entries across shards
  std::atomic<std::size_t> createdN{0};
  std::atomic<std::size_t> evictedN{0};
  std::atomic<std::size_t> residentN{0};
  std::atomic<std::size_t> spilledNowN{0};
  std::atomic<std::uint64_t> spilledTotalN{0};
  std::atomic<std::uint64_t> restoresN{0};
  std::atomic<std::uint64_t> restoreFailuresN{0};
  std::atomic<std::uint64_t> spillBytesN{0};
};

} // namespace qdd::service
