#pragma once

// qdd::service::json — a strict, dependency-free JSON value model for the
// HTTP API: parse request bodies, build response documents, round-trip in
// tests. Deliberately small: no SAX interface, no number bignums, no
// comments/trailing commas (requests violating RFC 8259 are 400s).
//
// String *writing* shares viz::jsonEscape / viz::jsonNumber with the DD
// exporters, so every byte the service emits obeys the same escaping rules
// (control characters escaped, NaN/Inf serialized as null, never bare).

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace qdd::service::json {

/// Thrown by parse() on malformed input; `what()` carries offset context.
class ParseError : public std::runtime_error {
public:
  explicit ParseError(const std::string& message)
      : std::runtime_error(message) {}
};

/// One JSON value (null / bool / number / string / array / object).
/// Object member order is not preserved (std::map) — the API never relies
/// on it, and deterministic iteration makes serialized output reproducible.
class Value {
public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Value() = default;
  static Value null() { return Value(); }
  static Value boolean(bool b);
  static Value number(double n);
  static Value string(std::string s);
  static Value array();
  static Value object();

  /// Strict parse of a complete JSON document (trailing whitespace allowed,
  /// trailing garbage is an error). Throws ParseError.
  static Value parse(const std::string& text);

  [[nodiscard]] Kind kind() const noexcept { return k; }
  [[nodiscard]] bool isNull() const noexcept { return k == Kind::Null; }
  [[nodiscard]] bool isBool() const noexcept { return k == Kind::Bool; }
  [[nodiscard]] bool isNumber() const noexcept { return k == Kind::Number; }
  [[nodiscard]] bool isString() const noexcept { return k == Kind::String; }
  [[nodiscard]] bool isArray() const noexcept { return k == Kind::Array; }
  [[nodiscard]] bool isObject() const noexcept { return k == Kind::Object; }

  [[nodiscard]] bool asBool(bool fallback = false) const;
  [[nodiscard]] double asNumber(double fallback = 0.) const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<Value>& asArray() const;
  [[nodiscard]] const std::map<std::string, Value>& asObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// Typed convenience getters over find(): fall back when the member is
  /// absent or of the wrong type.
  [[nodiscard]] double getNumber(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::string getString(const std::string& key,
                                      const std::string& fallback) const;
  [[nodiscard]] bool getBool(const std::string& key, bool fallback) const;

  /// Mutating builders (only valid on the matching kind).
  void push(Value v);
  void set(const std::string& key, Value v);

  /// Serializes the value (single line, viz escaping/number rules).
  [[nodiscard]] std::string dump() const;

private:
  Kind k = Kind::Null;
  bool b = false;
  double num = 0.;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;
};

} // namespace qdd::service::json
