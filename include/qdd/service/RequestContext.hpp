#pragma once

// qdd::service — per-request annotations flowing from handlers back to the
// HTTP layer. The server cannot see inside a handler, but the access log
// and incident records want handler-level facts: which session the request
// touched and how the session's DD changed. Handlers write them into a
// thread-local slot; HttpServer resets it before dispatch and reads it
// after. (Handlers run synchronously on the connection's worker thread, so
// a thread-local is exactly the right scope — no locking, no plumbing
// through every handler signature.)

#include <cstdint>
#include <string>

namespace qdd::service {

struct RequestAnnotations {
  std::string sessionId;         ///< session the request touched, if any
  std::int64_t ddNodeDelta = 0;  ///< session DD node-count change
  bool hasNodeDelta = false;

  void reset() {
    sessionId.clear();
    ddNodeDelta = 0;
    hasNodeDelta = false;
  }

  void noteSession(const std::string& id) { sessionId = id; }
  void noteNodeDelta(std::int64_t delta) {
    ddNodeDelta = delta;
    hasNodeDelta = true;
  }
};

/// The calling thread's annotation slot.
inline RequestAnnotations& requestAnnotations() noexcept {
  thread_local RequestAnnotations annotations;
  return annotations;
}

} // namespace qdd::service
