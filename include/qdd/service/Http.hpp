#pragma once

// qdd::service — HTTP/1.1 wire layer. Dependency-free (POSIX sockets only):
// request parsing with hard header/body limits, response serialization, and
// a small blocking client used by tests, benchmarks, and scripted drivers.
//
// Supported surface (all the session API needs, nothing more): methods with
// a Content-Length body or none, keep-alive and close, query strings.
// Transfer-Encoding: chunked is rejected with 501.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace qdd::service {

/// One parsed request. Header names are lower-cased; query values are the
/// raw (undecoded) octets between '=' and '&'.
struct HttpRequest {
  std::string method;
  std::string target; ///< as received, e.g. "/v1/sessions/s1/dd?fmt=dot"
  std::string path;   ///< target up to '?'
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;
  std::string body;
  bool keepAlive = true;
};

/// One response about to be serialized.
struct HttpResponse {
  int status = 200;
  std::string contentType = "application/json";
  std::string body;
  bool close = false; ///< force Connection: close
  /// Extra headers emitted verbatim (e.g. the traceparent echo). The
  /// framing headers (Content-Type/-Length, Connection) stay owned by
  /// writeHttpResponse and cannot be overridden here.
  std::vector<std::pair<std::string, std::string>> headers;

  static HttpResponse json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
};

/// Standard reason phrase for the status codes the service emits.
[[nodiscard]] const char* statusReason(int status);

/// Outcome of reading one request off a connection.
enum class ReadOutcome : std::uint8_t {
  Ok,            ///< request parsed into `out`
  Closed,        ///< peer closed (or timed out) before any request byte
  Malformed,     ///< unparseable request -> respond 400 and close
  TooLarge,      ///< headers or Content-Length over limit -> 431/413, close
  Unsupported,   ///< Transfer-Encoding etc. -> 501, close
};

/// Reads and parses one HTTP/1.1 request from `fd`. `maxBodyBytes` bounds
/// the declared Content-Length (the body of an over-limit request is never
/// read — the caller answers 413 and closes). Uses `carry` to preserve
/// pipelined bytes between keep-alive requests on the same connection.
ReadOutcome readHttpRequest(int fd, HttpRequest& out, std::string& carry,
                            std::size_t maxBodyBytes);

/// Serializes `response` into on-the-wire bytes (status line, framing
/// headers, body). Shared by the blocking writer below and the reactor
/// path, which queues the bytes on the connection's write buffer.
[[nodiscard]] std::string serializeHttpResponse(const HttpResponse& response);

/// Serializes and sends `response` on `fd` (Content-Length framing).
/// Returns false when the peer is gone.
bool writeHttpResponse(int fd, const HttpResponse& response);

/// Minimal blocking HTTP client bound to one host/port: opens the
/// connection lazily, keeps it alive across requests, reconnects once when
/// the server closed it. Used by tests/test_service.cpp, bench_service, and
/// anything scripting the API without curl.
class HttpClient {
public:
  HttpClient(std::string host, std::uint16_t port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  struct Result {
    int status = 0;
    std::string body;
    std::map<std::string, std::string> headers; ///< lower-cased names
  };

  /// Performs one request; throws std::runtime_error on transport failure.
  /// `extraHeaders` are sent verbatim (e.g. {{"traceparent", "00-..."}}).
  Result request(const std::string& method, const std::string& target,
                 const std::string& body = "",
                 const std::vector<std::pair<std::string, std::string>>&
                     extraHeaders = {});

  /// Closes the connection (next request reconnects).
  void disconnect();

private:
  void ensureConnected();

  std::string host;
  std::uint16_t port;
  int fd = -1;
};

} // namespace qdd::service
