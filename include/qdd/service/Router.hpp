#pragma once

// qdd::service — method + path-pattern dispatch. Routes are registered as
// literal segments or `{name}` captures ("/v1/sessions/{id}/step"); dispatch
// fills the capture map and reports the matched pattern string so metrics
// aggregate per route, not per session id.

#include "qdd/service/Http.hpp"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace qdd::service {

/// Path parameters captured by `{name}` segments.
using PathParams = std::map<std::string, std::string>;

/// One request handler. Throwing is allowed — the server converts uncaught
/// exceptions into a 500 JSON error.
using Handler =
    std::function<HttpResponse(const HttpRequest&, const PathParams&)>;

class Router {
public:
  /// Registers `handler` for `method` + `pattern`. Patterns are absolute
  /// paths whose segments are either literals or `{name}` captures.
  void add(const std::string& method, const std::string& pattern,
           Handler handler);

  struct Dispatch {
    HttpResponse response;
    std::string pattern; ///< matched route pattern ("" when none matched)
  };

  /// Finds and invokes the handler for `request`. Unknown path -> 404,
  /// known path with wrong method -> 405 (both as JSON error bodies).
  [[nodiscard]] Dispatch dispatch(const HttpRequest& request) const;

private:
  struct Route {
    std::string method;
    std::string pattern;
    std::vector<std::string> segments; ///< literal or "{name}"
    Handler handler;
  };

  static std::vector<std::string> split(const std::string& path);
  static bool match(const Route& route, const std::vector<std::string>& parts,
                    PathParams& params);

  std::vector<Route> routes;
};

/// Builds the uniform error body:
/// {"error": {"code": c, "message": m, "status": s}}
[[nodiscard]] std::string errorBody(int status, const std::string& code,
                                    const std::string& message);

/// Shorthand for HttpResponse::json(status, errorBody(...)).
[[nodiscard]] HttpResponse errorResponse(int status, const std::string& code,
                                         const std::string& message);

} // namespace qdd::service
