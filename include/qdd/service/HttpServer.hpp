#pragma once

// qdd::service — the embedded HTTP server. A dedicated accept thread polls
// the listening socket and hands each connection to the qdd::exec
// work-stealing pool as one detached task; the task loops keep-alive
// requests through the Router. Robustness knobs: body-size cap (413 before
// the body is read), idle-connection timeout (SO_RCVTIMEO), graceful drain
// (in-flight requests finish, everything new gets 503 + close), and a hard
// stop that shuts down every open connection.
//
// Worker occupancy: one connection holds one pool worker while it is open,
// so `workers` bounds the number of concurrently *open* connections
// (excess connections queue in the pool). The idle timeout returns workers
// held by silent keep-alive clients. Size `workers` to the expected client
// count (docs/SERVICE.md discusses this).

#include "qdd/exec/ThreadPool.hpp"
#include "qdd/obs/TraceContext.hpp"
#include "qdd/service/Metrics.hpp"
#include "qdd/service/Router.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

namespace qdd::service {

class IncidentLog;

struct ServerOptions {
  std::string bindAddress = "127.0.0.1";
  /// 0 picks an ephemeral port; read the actual one via port().
  std::uint16_t port = 0;
  /// Pool workers == maximum concurrently open connections (0: hardware).
  std::size_t workers = 4;
  std::size_t maxBodyBytes = 1U << 20U;
  /// Idle keep-alive connections are closed after this long.
  int idleTimeoutMs = 5000;
  /// Request-scoped tracing: parse/emit W3C traceparent, install a
  /// TraceContext around dispatch, arm the obs flight recorder, and record
  /// a "service/request" root span per request.
  bool tracing = true;
  /// Requests at least this slow are captured as incidents even when they
  /// succeed (tail-latency forensics). <= 0 disables the slow trigger;
  /// ≥500 and 408 responses are always captured.
  double slowRequestMs = 250.;
  /// JSONL access log (one line per routed request); empty disables.
  std::string accessLogPath;
};

class HttpServer {
public:
  /// The router and metrics must outlive the server.
  HttpServer(ServerOptions options, Router& router, ServiceMetrics& metrics);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts accepting. Throws std::runtime_error when
  /// the address cannot be bound.
  void start();

  /// The bound port (the ephemeral one when options.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return boundPort; }

  /// Enters drain mode: every new request — on new or existing
  /// connections — is answered 503 and the connection closed; requests
  /// already executing finish normally.
  void drain() noexcept { drainingFlag.store(true); }
  [[nodiscard]] bool draining() const noexcept {
    return drainingFlag.load();
  }

  /// Blocks until no request is in flight or `timeoutMs` elapsed; returns
  /// true when idle was reached.
  bool awaitIdle(int timeoutMs);

  /// Stops accepting, shuts down all open connections, joins the accept
  /// thread, and drains the pool. Idempotent.
  void stop();

  [[nodiscard]] std::size_t openConnections() const;

  /// Attaches the incident log slow/error/deadline captures go to (must
  /// outlive the server; nullptr disables capture).
  void setIncidentLog(IncidentLog* log) noexcept { incidents = log; }

private:
  void acceptLoop();
  void handleConnection(int fd);
  void trackOpen(int fd);
  void trackClosed(int fd);
  void logAccess(const obs::TraceContext& ctx, const HttpRequest& request,
                 const std::string& routeKey, int status, double ms,
                 std::size_t bytesOut);

  const ServerOptions options;
  Router& router;
  ServiceMetrics& metrics;

  int listenFd = -1;
  std::uint16_t boundPort = 0;
  std::atomic<bool> stopping{false};
  std::atomic<bool> drainingFlag{false};
  std::thread acceptor;

  mutable std::mutex connMutex;
  std::condition_variable connCv;
  std::set<int> openFds;
  std::size_t inFlight = 0; ///< requests currently executing a handler

  IncidentLog* incidents = nullptr;
  std::mutex accessLogMutex;
  std::ofstream accessLog;

  /// Declared last on purpose: the pool destructor joins the connection
  /// workers, and they touch connMutex/connCv on their way out — those
  /// members must still be alive when the workers finish.
  exec::ThreadPool pool;
};

} // namespace qdd::service
