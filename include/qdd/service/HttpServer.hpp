#pragma once

// qdd::service — the embedded HTTP server, in two network modes.
//
// Event-driven (default, NetMode::Epoll / Poll): a qdd::net::Reactor owns
// every socket on one event-loop thread; only *complete* requests are
// dispatched to the qdd::exec pool, and the serialized response is queued
// back through the reactor for writeout. Slow or silent clients never pin
// a worker — concurrency is bounded by memory (one buffered connection
// each), not by worker count, and `workers` sizes CPU parallelism only.
//
// Threaded (NetMode::Threaded, `--net=threaded` fallback): a dedicated
// accept thread hands each connection to the pool as one detached task that
// loops keep-alive requests. One open connection holds one pool worker, so
// `workers` bounds concurrently open connections; the idle timeout
// (SO_RCVTIMEO) returns workers held by silent keep-alive clients.
//
// Both modes share the robustness knobs — body-size cap (413 before the
// body is read), idle-connection timeout, graceful drain (in-flight
// requests finish, everything new gets 503 + close), hard stop — and the
// exact same per-request pipeline (tracing, metrics, incidents, access
// log) via processRequest(). docs/SERVICE.md discusses sizing.

#include "qdd/exec/ThreadPool.hpp"
#include "qdd/net/Reactor.hpp"
#include "qdd/obs/TraceContext.hpp"
#include "qdd/service/Metrics.hpp"
#include "qdd/service/Router.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

namespace qdd::service {

class IncidentLog;

/// Network front-end selection. Epoll falls back to Poll at runtime when
/// the platform has no epoll; Threaded keeps the legacy
/// thread-per-connection path (one release, see docs/SERVICE.md).
enum class NetMode : std::uint8_t { Epoll, Poll, Threaded };

/// Default NetMode, overridable via the QDD_NET environment variable
/// ("epoll" | "poll" | "threaded"); unset or unrecognized values mean
/// Epoll. Lets CI run the whole service suite in either mode.
[[nodiscard]] NetMode defaultNetMode();

struct ServerOptions {
  std::string bindAddress = "127.0.0.1";
  /// 0 picks an ephemeral port; read the actual one via port().
  std::uint16_t port = 0;
  /// Pool workers. Event-driven modes: CPU parallelism for request
  /// handlers. Threaded mode: also the maximum concurrently open
  /// connections (0: hardware).
  std::size_t workers = 4;
  std::size_t maxBodyBytes = 1U << 20U;
  /// Network front-end (see NetMode); QDD_NET overrides the default.
  NetMode net = defaultNetMode();
  /// Idle keep-alive connections are closed after this long.
  int idleTimeoutMs = 30000;
  /// Request-scoped tracing: parse/emit W3C traceparent, install a
  /// TraceContext around dispatch, arm the obs flight recorder, and record
  /// a "service/request" root span per request.
  bool tracing = true;
  /// Requests at least this slow are captured as incidents even when they
  /// succeed (tail-latency forensics). <= 0 disables the slow trigger;
  /// ≥500 and 408 responses are always captured.
  double slowRequestMs = 250.;
  /// JSONL access log (one line per routed request); empty disables.
  std::string accessLogPath;
};

class HttpServer {
public:
  /// The router and metrics must outlive the server.
  HttpServer(ServerOptions options, Router& router, ServiceMetrics& metrics);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts accepting. Throws std::runtime_error when
  /// the address cannot be bound.
  void start();

  /// The bound port (the ephemeral one when options.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return boundPort; }

  /// Enters drain mode: every new request — on new or existing
  /// connections — is answered 503 and the connection closed; requests
  /// already executing finish normally.
  void drain() noexcept { drainingFlag.store(true); }
  [[nodiscard]] bool draining() const noexcept {
    return drainingFlag.load();
  }

  /// Blocks until no request is in flight or `timeoutMs` elapsed; returns
  /// true when idle was reached.
  bool awaitIdle(int timeoutMs);

  /// Stops accepting, shuts down all open connections, joins the accept
  /// thread, and drains the pool. Idempotent.
  void stop();

  [[nodiscard]] std::size_t openConnections() const;

  /// Effective network mode after any epoll->poll fallback (valid after
  /// start()): "epoll", "poll", or "threaded".
  [[nodiscard]] const char* netName() const noexcept;

  /// Connections reclaimed by the reactor's idle sweep (0 in threaded
  /// mode, where idle connections time out via SO_RCVTIMEO instead).
  [[nodiscard]] std::uint64_t idleClosedConnections() const noexcept {
    return reactor ? reactor->idleClosedTotal() : 0;
  }

  /// Attaches the incident log slow/error/deadline captures go to (must
  /// outlive the server; nullptr disables capture).
  void setIncidentLog(IncidentLog* log) noexcept { incidents = log; }

private:
  void acceptLoop();
  void handleConnection(int fd);
  /// The full request pipeline shared by both network modes: drain check,
  /// tracing scope, router dispatch, metrics, incident capture, access
  /// log. Transport concerns (write, close-after) stay with the caller.
  HttpResponse processRequest(const HttpRequest& request);
  /// Maps a transport-level parse failure to its error response
  /// (400/413/501) and counts it. Shared by both network modes.
  HttpResponse parseFailureResponse(net::ParseStatus status);
  void trackOpen(int fd);
  void trackClosed(int fd);
  void logAccess(const obs::TraceContext& ctx, const HttpRequest& request,
                 const std::string& routeKey, int status, double ms,
                 std::size_t bytesOut);

  const ServerOptions options;
  Router& router;
  ServiceMetrics& metrics;

  int listenFd = -1;
  std::uint16_t boundPort = 0;
  std::atomic<bool> stopping{false};
  std::atomic<bool> drainingFlag{false};
  std::thread acceptor;

  mutable std::mutex connMutex;
  std::condition_variable connCv;
  std::set<int> openFds;
  std::size_t inFlight = 0; ///< requests currently executing a handler

  IncidentLog* incidents = nullptr;
  std::mutex accessLogMutex;
  std::ofstream accessLog;

  /// Declared before the pool on purpose: pool workers call
  /// reactor->complete() on their way out, so the reactor object must
  /// outlive the pool (it is destroyed after; complete() after stop() is a
  /// safe no-op).
  std::unique_ptr<net::Reactor> reactor;

  /// Declared last on purpose: the pool destructor joins the connection
  /// workers, and they touch connMutex/connCv (and the reactor) on their
  /// way out — those members must still be alive when the workers finish.
  exec::ThreadPool pool;
};

} // namespace qdd::service
