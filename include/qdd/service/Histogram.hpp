#pragma once

// qdd::service — fixed log-spaced latency histogram.
//
// Replaces the per-route raw-sample vectors of the original ServiceMetrics:
// memory is a fixed 57 counters per histogram no matter how many requests
// are recorded (the old design capped at 4096 samples and then silently
// stopped sampling), recording is O(1), and quantiles come from a 57-entry
// scan of a snapshot — so a /metrics scrape never sorts thousands of
// doubles under the lock the request path needs.
//
// Buckets grow by sqrt(2) from 1 µs, covering 1 µs .. ~268 s (beyond the
// service's 120 s deadline ceiling) with ≤ ~19% relative quantile error —
// plenty for p50/p95 operational summaries. The bucket layout is also the
// exposition format: toPrometheus-style cumulative `le` buckets map 1:1.

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace qdd::service {

class LatencyHistogram {
public:
  /// Finite buckets; values above the last bound land in the overflow
  /// (+Inf) bucket. 56 sqrt(2) steps from 1 µs ≈ 268 s.
  static constexpr std::size_t BUCKETS = 56;

  /// Inclusive upper bound of bucket `i` in milliseconds: 0.001 * 2^((i+1)/2).
  [[nodiscard]] static double upperBoundMs(std::size_t i) noexcept {
    return 0.001 * std::exp2(0.5 * static_cast<double>(i + 1));
  }

  /// Not thread-safe by itself — callers (ServiceMetrics) hold their lock.
  void record(double ms) noexcept {
    ++total;
    sum += ms;
    if (ms > maxSeen) {
      maxSeen = ms;
    }
    if (ms <= upperBoundMs(0)) {
      ++counts[0];
      return;
    }
    // invert upperBoundMs: smallest i with ms <= bound(i)
    const double idx = 2. * std::log2(ms * 1000.) - 1.;
    const auto i = static_cast<std::size_t>(
        idx <= 0. ? 0. : std::ceil(idx - 1e-9));
    if (i >= BUCKETS) {
      ++overflow;
    } else {
      ++counts[i];
    }
  }

  /// Quantile estimate (q in [0,1]) with linear interpolation inside the
  /// bucket. Overflow-bucket hits return the true maximum.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (total == 0) {
      return 0.;
    }
    const double target = q * static_cast<double>(total);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < BUCKETS; ++i) {
      if (counts[i] == 0) {
        continue;
      }
      const auto next = cum + counts[i];
      if (static_cast<double>(next) >= target) {
        const double lower = i == 0 ? 0. : upperBoundMs(i - 1);
        const double upper = upperBoundMs(i);
        const double inBucket =
            (target - static_cast<double>(cum)) /
            static_cast<double>(counts[i]);
        const double v = lower + (upper - lower) * inBucket;
        // never report beyond the observed maximum (tight first buckets)
        return v < maxSeen ? v : maxSeen;
      }
      cum = next;
    }
    return maxSeen;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return total; }
  [[nodiscard]] double sumMs() const noexcept { return sum; }
  [[nodiscard]] double maxMs() const noexcept { return maxSeen; }
  [[nodiscard]] std::uint64_t overflowCount() const noexcept {
    return overflow;
  }
  [[nodiscard]] const std::array<std::uint64_t, BUCKETS>&
  bucketCounts() const noexcept {
    return counts;
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < BUCKETS; ++i) {
      counts[i] += other.counts[i];
    }
    overflow += other.overflow;
    total += other.total;
    sum += other.sum;
    if (other.maxSeen > maxSeen) {
      maxSeen = other.maxSeen;
    }
  }

private:
  std::array<std::uint64_t, BUCKETS> counts{};
  std::uint64_t overflow = 0;
  std::uint64_t total = 0;
  double sum = 0.;
  double maxSeen = 0.;
};

} // namespace qdd::service
