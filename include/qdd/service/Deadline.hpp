#pragma once

// qdd::service — per-request deadlines. A single background thread holds a
// min-heap of (fire time, CancellationToken); when a deadline passes, the
// token is cancelled and the in-flight simulation/verification stops at its
// next gate boundary. Tokens are never disarmed: cancelling a token whose
// request already finished is harmless (nobody polls it any more), which
// keeps the timer free of per-request bookkeeping.

#include "qdd/exec/CancellationToken.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qdd::service {

class DeadlineTimer {
public:
  DeadlineTimer();
  ~DeadlineTimer();

  DeadlineTimer(const DeadlineTimer&) = delete;
  DeadlineTimer& operator=(const DeadlineTimer&) = delete;

  /// Returns a fresh token that will be cancelled `deadlineMs` from now.
  /// A non-positive deadline cancels the token before returning — callers
  /// see a deterministic "already expired" request, which the tests use to
  /// exercise the 408 path without racing the wall clock.
  [[nodiscard]] exec::CancellationToken arm(std::int64_t deadlineMs);

  /// Deadlines armed so far (including already-fired ones).
  [[nodiscard]] std::size_t armedCount() const;

private:
  using Clock = std::chrono::steady_clock;
  struct Entry {
    Clock::time_point fireAt;
    exec::CancellationToken token;
    bool operator>(const Entry& other) const { return fireAt > other.fireAt; }
  };

  void loop();

  mutable std::mutex mutex;
  std::condition_variable cv;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::size_t armed = 0;
  bool stopping = false;
  std::thread worker;
};

} // namespace qdd::service
