#pragma once

// qdd::service — the REST surface of the paper's web tool, mapped onto the
// library: interactive simulation sessions (Sec. IV-B), interactive
// verification sessions (Sec. IV-C), one-shot portfolio equivalence checks,
// and DD export in json/dot/svg. See docs/SERVICE.md for the endpoint
// reference.
//
// Robustness contract:
//   * admission control — session cap -> 429, circuit size caps -> 413,
//     body size cap -> 413 (enforced in the HTTP layer);
//   * per-request deadlines — every /run and /v1/verify arms a
//     DeadlineTimer token plumbed into the session's gate loop; expiry
//     stops the work at the next gate boundary and answers a structured
//     408 (the applied prefix stays applied and inspectable);
//   * TTL eviction of idle sessions (SessionStore).

#include "qdd/obs/Sinks.hpp"
#include "qdd/service/Deadline.hpp"
#include "qdd/service/Incidents.hpp"
#include "qdd/service/Metrics.hpp"
#include "qdd/service/Router.hpp"
#include "qdd/service/SessionStore.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace qdd::service {

/// Thrown by handlers to produce a structured JSON error response.
class ApiError : public std::runtime_error {
public:
  ApiError(int status, std::string code, const std::string& message)
      : std::runtime_error(message), status(status), code(std::move(code)) {}

  const int status;
  const std::string code;
};

struct ApiOptions {
  std::size_t maxSessions = 16;
  /// Circuit admission caps (413 circuit_too_large beyond them).
  std::size_t maxQubits = 25;
  std::size_t maxOperations = 200000;
  /// Deadline for /run and /v1/verify when the request names none.
  std::int64_t defaultDeadlineMs = 10000;
  /// Hard ceiling on requested deadlines (requests asking for more are
  /// clamped, not rejected). Non-positive requested deadlines expire
  /// immediately — a deterministic way to exercise the 408 path.
  std::int64_t maxDeadlineMs = 120000;
  /// Idle sessions older than this are evicted (<= 0 disables TTL).
  std::int64_t sessionTtlMs = 600000;
  /// Newest incident traces kept in memory (and mirrored on disk when
  /// `incidentDir` is set); older ones are dropped/unlinked.
  std::size_t maxIncidents = 32;
  /// On-disk mirror for incident trace JSON; empty keeps them memory-only.
  std::string incidentDir;
  /// Directory for idle-session spill files; empty disables the spill
  /// tier (see SessionStore).
  std::string spillDir;
  /// Sessions idle longer than this are spilled to disk (<= 0 disables
  /// idle-driven spilling; budget pressure still spills).
  std::int64_t spillAfterMs = 0;
  /// Soft cap on sessions holding a live DD package; the coldest beyond
  /// it are spilled. 0 means unlimited.
  std::size_t maxResidentSessions = 0;
  /// SessionStore shard count (rounded up to a power of two).
  std::size_t sessionShards = 8;
};

class Api {
public:
  Api(ApiOptions options, ServiceMetrics& metrics);

  /// Registers every endpoint on `router`. The Api must outlive the router.
  void install(Router& router);

  [[nodiscard]] SessionStore& sessions() noexcept { return store; }
  [[nodiscard]] DeadlineTimer& deadlines() noexcept { return timer; }
  /// The flight-recorder incident log served by /v1/incidents. Wire it to
  /// the server via HttpServer::setIncidentLog(&api.incidents()).
  [[nodiscard]] IncidentLog& incidents() noexcept { return incidentLog; }

  /// Attaches the obs aggregator whose summaries /metrics embeds.
  void setAggregator(std::shared_ptr<obs::AggregatorSink> sink) {
    aggregator = std::move(sink);
  }
  /// Lets /healthz report drain state (wired to HttpServer::draining).
  void setDrainingProbe(std::function<bool()> probe) {
    drainingProbe = std::move(probe);
  }
  /// Lets /metrics export qdd_net_open_connections (wired to
  /// HttpServer::openConnections).
  void setOpenConnectionsProbe(std::function<std::size_t()> probe) {
    openConnectionsProbe = std::move(probe);
  }

private:
  HttpResponse createSession(const HttpRequest& request);
  HttpResponse listSessions();
  HttpResponse getSession(const std::string& id);
  HttpResponse deleteSession(const std::string& id);
  HttpResponse stepSession(const std::string& id, const HttpRequest& request);
  HttpResponse backSession(const std::string& id, const HttpRequest& request);
  HttpResponse resetSession(const std::string& id);
  HttpResponse runSession(const std::string& id, const HttpRequest& request);
  HttpResponse exportDd(const std::string& id, const HttpRequest& request);
  HttpResponse verifyOnce(const HttpRequest& request);
  HttpResponse healthz();
  HttpResponse metricsDoc(const HttpRequest& request);
  HttpResponse listIncidents();
  HttpResponse getIncident(const std::string& id);

  /// The DD statistics /metrics reports: retired packages plus whichever
  /// live sessions are idle right now.
  [[nodiscard]] mem::StatsRegistry ddStats() const;
  [[nodiscard]] std::string prometheusDoc() const;

  /// Builds a circuit from {"qasm": "..."} or {"builder": {...}}, enforcing
  /// the qubit/operation caps. Throws ApiError.
  ir::QuantumComputation buildCircuit(const json::Value& spec) const;

  [[nodiscard]] std::int64_t clampDeadline(const json::Value& body) const;
  std::shared_ptr<SessionStore::Entry> require(const std::string& id);
  /// Locks the entry and transparently restores it when spilled (the lock
  /// is the restore-once guard). RestoreError maps to a 500.
  std::unique_lock<std::mutex> lockSession(SessionStore::Entry& entry);

  json::Value sessionDoc(SessionStore::Entry& entry, bool includeDd) const;

  const ApiOptions options;
  ServiceMetrics& metrics;
  SessionStore store;
  DeadlineTimer timer;
  IncidentLog incidentLog;
  std::shared_ptr<obs::AggregatorSink> aggregator;
  std::function<bool()> drainingProbe;
  std::function<std::size_t()> openConnectionsProbe;
};

} // namespace qdd::service
