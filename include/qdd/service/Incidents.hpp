#pragma once

// qdd::service — bounded incident log fed by the obs flight recorder.
//
// Tail-based capture: requests record their spans into the always-on
// per-thread rings (obs::FlightRecorder) at ~nanosecond cost, and only when
// a request turns out to be worth keeping — slower than the configured
// threshold, a ≥500 response, or a 408 deadline expiry — does the server
// ask the IncidentLog to assemble that trace's spans into a Chrome-trace-
// compatible JSON document. The last N incidents are retained in memory
// (GET /v1/incidents, GET /v1/incidents/{id}) and, when an incident
// directory is configured, mirrored to disk with the same bound (oldest
// file deleted first), so the directory can never grow without limit.

#include "qdd/obs/TraceContext.hpp"
#include "qdd/service/Json.hpp"

#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace qdd::service {

class IncidentLog {
public:
  /// `maxRetained` bounds both the in-memory list and the on-disk mirror;
  /// `dir` empty keeps incidents memory-only.
  IncidentLog(std::size_t maxRetained, std::string dir);

  /// Snapshots the flight-recorder events carrying `ctx`'s trace id and
  /// retains them as one incident. Returns the incident id.
  std::string capture(const obs::TraceContext& ctx, const std::string& route,
                      int status, double latencyMs,
                      const std::string& sessionId, const char* reason);

  /// {"incidents":[summaries, newest first],"captured":n,"retained":n}
  [[nodiscard]] json::Value listJson() const;

  /// Full Chrome-trace JSON of one incident; false when unknown (or already
  /// rotated out).
  [[nodiscard]] bool find(const std::string& id, std::string& traceJson) const;

  [[nodiscard]] std::size_t captured() const;
  [[nodiscard]] std::size_t retained() const;
  /// Cumulative captures by reason ("slow" / "error" / "deadline").
  [[nodiscard]] std::map<std::string, std::size_t> byReason() const;

  [[nodiscard]] const std::string& directory() const noexcept { return dir; }

private:
  struct Entry {
    std::string id;
    std::string traceId;
    std::string route;
    std::string sessionId;
    std::string reason;
    int status = 0;
    double latencyMs = 0.;
    double wallMs = 0.; ///< capture time, ms since the Unix epoch
    std::size_t spans = 0;
    std::string traceJson;
  };

  void writeToDisk(const Entry& entry);

  mutable std::mutex mutex;
  const std::size_t maxRetained;
  const std::string dir;
  bool dirReady = false;
  std::deque<Entry> entries; ///< newest at the back
  std::deque<std::string> diskFiles;
  std::size_t seq = 0;
  std::size_t capturedN = 0;
  std::map<std::string, std::size_t> reasons;
};

} // namespace qdd::service
