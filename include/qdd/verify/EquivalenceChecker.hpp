#pragma once

#include "qdd/dd/Package.hpp"
#include "qdd/ir/QuantumComputation.hpp"

#include <atomic>
#include <string>

namespace qdd::verify {

/// Verdict of an equivalence check (paper Sec. III-C).
enum class Equivalence : std::uint8_t {
  Equivalent,
  EquivalentUpToGlobalPhase,
  NotEquivalent,
  /// Simulation runs can only ever prove non-equivalence; agreement on all
  /// stimuli yields this verdict.
  ProbablyEquivalent,
};

std::string toString(Equivalence e);

/// Statistics gathered while checking.
struct CheckResult {
  Equivalence equivalence = Equivalence::NotEquivalent;
  std::size_t maxNodes = 0;     ///< peak size of any intermediate DD
  std::size_t finalNodes = 0;   ///< size of the final DD
  std::size_t gatesApplied = 0; ///< total gate DDs multiplied
  /// Gate-DD cache behavior of the alternating scheme, which shares one
  /// cache across the whole run (both directions). Zero for other methods.
  std::size_t gateCacheLookups = 0;
  std::size_t gateCacheHits = 0;
  std::string method;
  /// True when the check was abandoned at a gate boundary because the
  /// caller's cancellation flag fired; `equivalence` is meaningless then.
  bool cancelled = false;

  [[nodiscard]] bool consideredEquivalent() const noexcept {
    return equivalence != Equivalence::NotEquivalent;
  }
  [[nodiscard]] double gateCacheHitRatio() const noexcept {
    return gateCacheLookups == 0
               ? 0.
               : static_cast<double>(gateCacheHits) /
                     static_cast<double>(gateCacheLookups);
  }
};

/// Gate-application strategies for the alternating scheme ([20], Ex. 12):
/// the order in which gates from G and G'^{-1} are applied, aiming to keep
/// the intermediate DD close to the identity.
enum class Strategy : std::uint8_t {
  /// Apply all of G, then all of G'^{-1} — equivalent to building the full
  /// system matrix of G first (the paper's "21 nodes" reference point).
  Sequential,
  /// Alternate one gate from G with one gate from G'^{-1}.
  OneToOne,
  /// Alternate proportionally to the two gate counts (useful when a
  /// compiled circuit has k gates per original gate).
  Proportional,
  /// Apply one gate from G, then gates from G'^{-1} up to the next barrier
  /// — exactly the synchronization of Ex. 12 / Fig. 5(b).
  BarrierSync,
};

std::string toString(Strategy s);

/// Checks the equivalence of two quantum circuits with decision diagrams.
///
/// Both circuits must be purely unitary (barriers allowed) and act on the
/// same number of qubits with the same qubit ordering — the same
/// restrictions the paper's tool imposes (Sec. IV-C).
class EquivalenceChecker {
public:
  EquivalenceChecker(const ir::QuantumComputation& first,
                     const ir::QuantumComputation& second,
                     double tolerance = 1e-9);

  /// Reference scheme: build both system matrices and compare their
  /// (canonical!) root pointers (paper Ex. 11).
  CheckResult checkByConstruction(Package& pkg) const;

  /// Alternating scheme: start from the identity, apply gates from G and
  /// G'^{-1} according to `strategy`, and test whether the result resembles
  /// the identity (paper Ex. 12, [20]).
  ///
  /// `cancel`, when non-null, is polled at every gate boundary; once it
  /// reads true the check stops and returns with `cancelled` set. This is
  /// how the portfolio checker (qdd::exec) stops losing directions — the
  /// flag is a plain atomic so this layer stays independent of qdd::exec.
  CheckResult checkAlternating(Package& pkg,
                               Strategy strategy = Strategy::Proportional,
                               const std::atomic<bool>* cancel = nullptr)
      const;

  /// Simulation-based check with `numStimuli` random computational basis
  /// states: cheap, and able to prove non-equivalence quickly. `cancel` is
  /// polled between stimuli (see checkAlternating).
  CheckResult checkBySimulation(Package& pkg, std::size_t numStimuli = 16,
                                std::uint64_t seed = 0,
                                const std::atomic<bool>* cancel = nullptr)
      const;

private:
  /// Classifies a DD as identity / identity-up-to-phase / neither.
  [[nodiscard]] Equivalence classifyAgainstIdentity(Package& pkg,
                                                    const mEdge& e) const;

  ir::QuantumComputation g1; ///< owned copies: the checker may outlive
  ir::QuantumComputation g2; ///< the circuits it was constructed from
  double tol;
};

} // namespace qdd::verify
