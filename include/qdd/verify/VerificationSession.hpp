#pragma once

#include "qdd/verify/EquivalenceChecker.hpp"

#include <vector>

namespace qdd::verify {

/// Interactive counterpart of the tool's verification tab (paper Sec. IV-C /
/// Fig. 9): two circuits are loaded side by side, and the user successively
/// applies operations from the left circuit (from the left) and inverted
/// operations from the right circuit (from the right) onto an identity DD,
/// watching whether it stays close to the identity.
class VerificationSession {
public:
  VerificationSession(const ir::QuantumComputation& left,
                      const ir::QuantumComputation& right, Package& package);
  ~VerificationSession();

  VerificationSession(const VerificationSession&) = delete;
  VerificationSession& operator=(const VerificationSession&) = delete;

  [[nodiscard]] const mEdge& state() const noexcept { return current; }
  [[nodiscard]] const ir::QuantumComputation& leftCircuit() const noexcept {
    return left;
  }
  [[nodiscard]] const ir::QuantumComputation& rightCircuit() const noexcept {
    return right;
  }
  /// Gates of the left circuit applied so far.
  [[nodiscard]] std::size_t leftPosition() const noexcept { return posL; }
  [[nodiscard]] std::size_t rightPosition() const noexcept { return posR; }
  [[nodiscard]] std::size_t leftSize() const noexcept { return left.size(); }
  [[nodiscard]] std::size_t rightSize() const noexcept {
    return right.size();
  }
  [[nodiscard]] bool finished() const noexcept {
    return posL == left.size() && posR == right.size();
  }

  /// Applies the next gate of the left circuit (barriers are skipped but
  /// stop runLeftToBarrier). Returns false when exhausted.
  bool stepLeft();
  /// Applies the inverse of the next gate of the right circuit.
  bool stepRight();
  /// Undoes the most recent step (either side).
  bool stepBack();
  /// Undoes every step back to the identity. Returns steps unwound. Works
  /// after a spill/restore cycle (which drops the snapshot history) by
  /// rebuilding the identity DD directly.
  std::size_t rewindToStart();

  /// Adopts `state` (already interned in this session's package) as the
  /// accumulated DD at (`posL`, `posR`) with the peak carried over — the
  /// restore half of a disk-spill round trip. Snapshot history is not part
  /// of the spill image: stepBack() returns false until the next step.
  void restoreTo(const mEdge& state, std::size_t leftPos,
                 std::size_t rightPos, std::size_t peakNodes);
  /// Applies right-circuit gates up to (and including) the next barrier.
  std::size_t runRightToBarrier();
  /// Runs the complete Ex. 12 schedule: one left gate, then right gates up
  /// to the next barrier, until both circuits are exhausted.
  ///
  /// `cancel`, when non-null, is polled at every gate boundary; once it
  /// reads true the run stops and the result comes back with `cancelled`
  /// set (its `equivalence` is meaningless then). Used by the qdd::service
  /// layer to enforce per-request deadlines (see
  /// EquivalenceChecker::checkAlternating for the same contract).
  CheckResult runToCompletion(const std::atomic<bool>* cancel = nullptr);

  /// Current verdict for the accumulated DD (meaningful once finished()).
  [[nodiscard]] Equivalence currentVerdict();
  [[nodiscard]] std::size_t currentNodes() const;
  [[nodiscard]] std::size_t peakNodes() const noexcept { return peak; }
  [[nodiscard]] const std::vector<std::size_t>& nodeHistory() const noexcept {
    return history;
  }
  /// Table-pressure snapshot after each applied step (same indexing as
  /// `nodeHistory`).
  [[nodiscard]] const std::vector<mem::TablePressure>&
  pressureHistory() const noexcept {
    return pressures;
  }

private:
  struct Snapshot {
    mEdge state;
    std::size_t posL;
    std::size_t posR;
  };

  void replace(const mEdge& next);
  void record();

  ir::QuantumComputation left;  ///< owned copies: sessions may outlive
  ir::QuantumComputation right; ///< the circuits they were created from
  Package& pkg;
  mEdge current;
  std::size_t posL = 0;
  std::size_t posR = 0;
  std::vector<Snapshot> snapshots;
  std::size_t peak = 0;
  std::vector<std::size_t> history;
  std::vector<mem::TablePressure> pressures;
  double tol;
};

} // namespace qdd::verify
