#pragma once

#include "qdd/common/SpinLock.hpp"
#include "qdd/mem/StatsRegistry.hpp"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace qdd::mem {

/// Allocation generation marking objects currently sitting on the free list.
/// Compared against compute-table entry stamps, it is larger than every real
/// generation, so cached results referencing a freed object are always
/// rejected.
inline constexpr std::uint32_t FREED_GENERATION = 0xffffffffU;

/// Chunked pool allocator with an intrusive free list and generation
/// stamping, extracted from the unique table so node storage is decoupled
/// from hashing (one manager per node type lives in the Package; the real
/// table owns one for its entries).
///
/// Requirements on `T`: a `T* next` member (free-list chaining) and a
/// `std::uint32_t gen` member (allocation generation). `get()` stamps the
/// object with the current generation; `release()` stamps it FREED. The
/// owner bumps the generation whenever previously published objects may be
/// recycled (garbage collection, table shrinking); generation-stamped caches
/// then detect stale pointers lazily: an object is unchanged since a stamp
/// `g` iff `obj->gen <= g`.
///
/// Chunks are never returned to the system while the manager lives, so
/// dereferencing a stale pointer is memory-safe (though logically invalid) —
/// exactly what the lazy cache-invalidation scheme relies on.
///
/// Thread safety: serial by default. `setConcurrent(true)` (used by
/// `QDD_APPLY=parallel` packages) guards `get`/`release` with a spinlock so
/// pool workers can allocate candidates concurrently; the critical section
/// is a couple of pointer writes, which is exactly the regime a spinlock is
/// for. Generation changes and stats snapshots remain quiescent-only.
template <class T> class MemoryManager {
public:
  static constexpr std::size_t INITIAL_CHUNK_SIZE = 2048;

  explicit MemoryManager(std::size_t initialChunkSize = INITIAL_CHUNK_SIZE)
      : chunkSize(initialChunkSize) {}

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  /// Toggles lock protection of `get`/`release`. Must be called at a
  /// quiescent point (normally once, at package construction).
  void setConcurrent(bool on) noexcept { concurrent = on; }
  [[nodiscard]] bool isConcurrent() const noexcept { return concurrent; }

  /// Returns an object stamped with the current generation. Contents other
  /// than `next`/`gen` are unspecified (recycled objects keep their old
  /// fields); the caller initializes them.
  T* get() {
    if (concurrent) {
      const std::lock_guard<SpinLock> guard(lock);
      return getUnlocked();
    }
    return getUnlocked();
  }

  /// Returns an object to the free list and marks it FREED.
  void release(T* t) noexcept {
    if (concurrent) {
      const std::lock_guard<SpinLock> guard(lock);
      releaseUnlocked(t);
      return;
    }
    releaseUnlocked(t);
  }

private:
  T* getUnlocked() {
    if (freeList != nullptr) {
      T* t = freeList;
      freeList = t->next;
      t->gen = currentGen;
      ++liveObjects;
      peakLive = std::max(peakLive, liveObjects);
      return t;
    }
    if (chunks.empty() || chunkIndex == chunkSize) {
      if (!chunks.empty()) {
        chunkSize *= 2;
      }
      chunks.push_back(std::make_unique<T[]>(chunkSize));
      chunkIndex = 0;
      totalSlots += chunkSize;
    }
    T* t = &chunks.back()[chunkIndex++];
    t->gen = currentGen;
    ++liveObjects;
    peakLive = std::max(peakLive, liveObjects);
    return t;
  }

  void releaseUnlocked(T* t) noexcept {
    t->next = freeList;
    t->gen = FREED_GENERATION;
    freeList = t;
    assert(liveObjects > 0);
    --liveObjects;
  }

public:
  /// Advances the allocation generation. Must be called before freed objects
  /// from an older generation can be handed out again with observable effect
  /// (i.e. at every garbage collection / shrink), so stale cache entries are
  /// distinguishable from live ones.
  void setGeneration(std::uint32_t gen) noexcept {
    assert(gen >= currentGen && gen != FREED_GENERATION);
    currentGen = gen;
  }
  [[nodiscard]] std::uint32_t generation() const noexcept {
    return currentGen;
  }

  /// Objects handed out and not yet released.
  [[nodiscard]] std::size_t live() const noexcept { return liveObjects; }
  [[nodiscard]] std::size_t peak() const noexcept { return peakLive; }

  [[nodiscard]] AllocatorStats stats() const noexcept {
    AllocatorStats s;
    s.live = liveObjects;
    s.peakLive = peakLive;
    s.allocated = totalSlots;
    s.chunks = chunks.size();
    s.bytes = totalSlots * sizeof(T);
    return s;
  }

private:
  std::vector<std::unique_ptr<T[]>> chunks;
  std::size_t chunkIndex = 0;
  std::size_t chunkSize;
  std::size_t totalSlots = 0;
  T* freeList = nullptr;
  std::uint32_t currentGen = 0;

  std::size_t liveObjects = 0;
  std::size_t peakLive = 0;

  bool concurrent = false;
  SpinLock lock;
};

} // namespace qdd::mem
