#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qdd::mem {

/// Counters of a `MemoryManager` (chunk allocator + free list).
struct AllocatorStats {
  std::size_t live = 0;      ///< objects handed out and not released
  std::size_t peakLive = 0;  ///< high-water mark of `live`
  std::size_t allocated = 0; ///< slots ever carved from chunks
  std::size_t chunks = 0;    ///< number of chunks backing the pool
  std::size_t bytes = 0;     ///< total chunk memory in bytes

  /// Accumulates another allocator's counters (sums; peaks are summed too,
  /// since the pools are disjoint and their memory coexists).
  void merge(const AllocatorStats& other) noexcept;
};

/// Snapshot of one hash-consing unique table (vector or matrix nodes).
struct UniqueTableStats {
  std::size_t entries = 0;     ///< nodes currently stored
  std::size_t peakEntries = 0; ///< high-water mark of `entries`
  std::size_t lookups = 0;
  std::size_t hits = 0; ///< lookups answered by an existing node
  std::size_t collisions = 0;
  std::size_t longestChain = 0; ///< longest open-addressing probe sequence
  std::size_t probes = 0;       ///< slot inspections across all lookups
  std::size_t levels = 0;
  std::size_t buckets = 0;  ///< total slots across all levels
  std::size_t rehashes = 0; ///< per-level slot-array doublings
  std::size_t shards = 0;   ///< lock-striped shards per level (1 = serial)
  /// Contended shard-lock acquisitions (a `try_lock` that had to fall back
  /// to spinning). Only advances for concurrent-mode tables.
  std::size_t shardContention = 0;
  AllocatorStats memory;

  /// Accumulates another table's counters: sums, except `longestChain`,
  /// `levels`, and `shards` which take the maximum — so merging any number
  /// of shard/package snapshots in any order yields the same totals.
  void merge(const UniqueTableStats& other) noexcept;

  [[nodiscard]] double hitRatio() const noexcept {
    return lookups == 0 ? 0.
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  /// Mean slots inspected per lookup (1.0 = every probe hit its home slot).
  [[nodiscard]] double avgProbeLength() const noexcept {
    return lookups == 0 ? 0.
                        : static_cast<double>(probes) /
                              static_cast<double>(lookups);
  }
  [[nodiscard]] double loadFactor() const noexcept {
    return buckets == 0 ? 0.
                        : static_cast<double>(entries) /
                              static_cast<double>(buckets);
  }
};

/// Snapshot of the canonical real-number table.
struct RealTableStats {
  std::size_t entries = 0;
  std::size_t peakEntries = 0;
  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t collisions = 0;
  std::size_t buckets = 0;
  std::size_t rehashes = 0;
  /// Failed compare-and-swap bucket publishes (another worker inserted into
  /// the same bucket first). Only advances for concurrent-mode tables.
  std::size_t casRetries = 0;
  AllocatorStats memory;

  /// Accumulates another table's counters (sums).
  void merge(const RealTableStats& other) noexcept;

  [[nodiscard]] double hitRatio() const noexcept {
    return lookups == 0 ? 0.
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Snapshot of one memoization (compute) table.
struct ComputeTableStats {
  std::string name;
  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t inserts = 0;
  /// Lookups whose key matched but whose entry referenced an object freed or
  /// recycled since insertion (generation mismatch) — the lazily-invalidated
  /// remainder of a garbage collection.
  std::size_t staleRejections = 0;

  /// Accumulates another snapshot's counters (sums; `name` is kept).
  void merge(const ComputeTableStats& other) noexcept;

  [[nodiscard]] double hitRatio() const noexcept {
    return lookups == 0 ? 0.
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Counters of the direct gate-application engine (`Package::applyGate`):
/// which kernel served each gate application. `fallback` counts applications
/// routed through the general matrix-DD `multiply` recursion instead — either
/// because no fast path exists for the operation (arbitrary two-qubit
/// unitaries) or because the `QDD_APPLY=general` ablation disabled the
/// engine — so `coverage()` is comparable across modes.
struct ApplyPathStats {
  std::size_t diagonal = 0;    ///< diagonal gates: pure edge-weight rescale
  std::size_t permutation = 0; ///< antidiagonal gates: pure child swap
  std::size_t generic = 0;     ///< other 2x2 gates: direct two-term combine
  std::size_t fallback = 0;    ///< general makeGateDD + multiply path

  /// Accumulates another engine's counters (sums).
  void merge(const ApplyPathStats& other) noexcept;

  [[nodiscard]] std::size_t fast() const noexcept {
    return diagonal + permutation + generic;
  }
  [[nodiscard]] std::size_t total() const noexcept {
    return fast() + fallback;
  }
  /// Fraction of gate applications served by a fast path.
  [[nodiscard]] double coverage() const noexcept {
    return total() == 0 ? 0.
                        : static_cast<double>(fast()) /
                              static_cast<double>(total());
  }
};

/// Garbage-collection counters of a package.
struct GcStats {
  std::size_t runs = 0;
  std::uint32_t generation = 0; ///< current allocation generation (epoch)
  std::size_t collectedVectorNodes = 0;
  std::size_t collectedMatrixNodes = 0;
  std::size_t collectedReals = 0;

  /// Accumulates another package's GC counters (sums; `generation` takes the
  /// maximum, as generations are per-package epochs, not additive).
  void merge(const GcStats& other) noexcept;
};

/// Fork/join counters of the intra-circuit parallel apply/multiply engine
/// (`QDD_APPLY=parallel`). Zero for serial packages.
struct ParallelStats {
  std::size_t forks = 0;   ///< DD subproblems forked onto the exec pool
  std::size_t regions = 0; ///< top-level parallel operations (fork/join trees)
  std::size_t cancelled = 0; ///< operations aborted by a cancellation token

  /// Accumulates another engine's counters (sums).
  void merge(const ParallelStats& other) noexcept;
};

/// Compact per-step snapshot cheap enough to record after every applied
/// operation (sessions expose a history of these so the paper's "inspect
/// intermediate DDs" workflow can also show table pressure).
struct TablePressure {
  std::size_t vectorNodes = 0;
  std::size_t matrixNodes = 0;
  std::size_t realEntries = 0;
  std::size_t cacheLookups = 0; ///< summed over all compute tables
  std::size_t cacheHits = 0;
  std::size_t gcRuns = 0;

  [[nodiscard]] double cacheHitRatio() const noexcept {
    return cacheLookups == 0 ? 0.
                             : static_cast<double>(cacheHits) /
                                   static_cast<double>(cacheLookups);
  }
};

/// Aggregated view over every table and allocator of a package, queryable as
/// one struct and serializable to JSON (exported by the trace exporter and
/// printed by `qdd_tool --stats`).
struct StatsRegistry {
  UniqueTableStats vectorTable;
  UniqueTableStats matrixTable;
  RealTableStats reals;
  std::vector<ComputeTableStats> computeTables;
  ApplyPathStats apply;
  ParallelStats parallel;
  GcStats gc;

  /// Looks up a compute table snapshot by name; nullptr if absent.
  [[nodiscard]] const ComputeTableStats*
  computeTable(const std::string& name) const;

  /// Sums lookups/hits/inserts/stale rejections over all compute tables.
  [[nodiscard]] ComputeTableStats computeTotals() const;

  [[nodiscard]] TablePressure pressure() const;

  /// Serializes the registry. `pretty == false` emits a single line (used by
  /// the benchmark harness so one grep-able record captures cache behavior).
  [[nodiscard]] std::string toJson(bool pretty = true) const;

  /// Accumulates another registry into this one — the aggregation step after
  /// a parallel batch, merging each worker package's statistics() snapshot.
  /// Counters are summed; structural maxima (longest chain, levels, GC
  /// generation) take the maximum; compute tables are matched by name, with
  /// unknown names appended. Merging registries in any order yields the same
  /// totals, so the aggregate is deterministic regardless of scheduling.
  void merge(const StatsRegistry& other);
};

} // namespace qdd::mem
