#pragma once

// qdd::obs — request-scoped trace identity (W3C Trace Context).
//
// A TraceContext is the identity of one request: a 128-bit trace id shared
// by every span recorded on behalf of the request (across threads) and a
// 64-bit span id naming the server's own root span. It travels on the wire
// as the W3C `traceparent` header and inside the process as a thread-local
// installed by TraceScope; exec::ThreadPool captures the submitter's
// context with each task, so work fanned out on the pool stays attributed
// to the request that enqueued it.
//
// The context is deliberately independent of the QDD_OBS compile gate: it
// is a few integers, and the service's access log and flight recorder need
// it even in builds where span recording is compiled out.

#include <cstdint>
#include <string>

namespace qdd::obs {

struct TraceContext {
  std::uint64_t traceHi = 0; ///< high 64 bits of the 128-bit trace id
  std::uint64_t traceLo = 0; ///< low 64 bits
  std::uint64_t spanId = 0;  ///< this hop's span id
  std::uint8_t flags = 1;    ///< W3C trace-flags (bit 0: sampled)

  /// Per the W3C spec an all-zero trace id or span id is invalid.
  [[nodiscard]] bool valid() const noexcept {
    return (traceHi | traceLo) != 0 && spanId != 0;
  }

  /// 32 lower-case hex chars of the trace id.
  [[nodiscard]] std::string traceIdHex() const;
  /// 16 lower-case hex chars of the span id.
  [[nodiscard]] std::string spanIdHex() const;
  /// Serializes as "00-<trace-id>-<span-id>-<flags>".
  [[nodiscard]] std::string traceparent() const;

  /// Parses a `traceparent` header value. Returns false (leaving `out`
  /// untouched) for anything malformed: wrong field count or length,
  /// non-hex digits, version "ff", or all-zero trace/span ids.
  static bool parseTraceparent(const std::string& header, TraceContext& out);

  /// A fresh context with random (nonzero) trace and span ids.
  static TraceContext make();

  /// A fresh nonzero 64-bit id (used for child span ids).
  static std::uint64_t nextId() noexcept;
};

/// The context installed on the calling thread (invalid when none is).
[[nodiscard]] const TraceContext& currentTrace() noexcept;

/// RAII: installs `ctx` as the calling thread's current context and
/// restores the previous one on destruction. Installing an invalid context
/// is meaningful — it clears the slot, so pool workers never leak the
/// previous task's identity into unrelated work.
class TraceScope {
public:
  explicit TraceScope(const TraceContext& ctx) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

private:
  TraceContext saved;
};

} // namespace qdd::obs
