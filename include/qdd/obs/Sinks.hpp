#pragma once

// Concrete sinks for the qdd::obs registry (see Obs.hpp):
//   * ChromeTraceSink — buffers records and exports one Chrome trace-event
//     JSON document loadable by chrome://tracing and ui.perfetto.dev;
//   * JsonlSink — streams every record as one JSON object per line;
//   * AggregatorSink — in-memory per-operation latency histograms
//     (p50/p95/p99) and the per-simulation-step DD metrics time series.

#include "qdd/obs/Obs.hpp"

#include <cstddef>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace qdd::obs {

/// Buffers spans/counters/steps and serializes them as Chrome trace events.
/// Spans become complete ("X") events whose nesting Perfetto reconstructs
/// from interval containment; counters and per-step metrics become counter
/// ("C") tracks plus one instant ("i") event per step carrying the full
/// metrics as args. Events are emitted sorted by timestamp (ties: the longer
/// — i.e. enclosing — span first), so `ts` is monotonically non-decreasing.
/// Every event carries the registry thread id as its `tid`, giving one track
/// per worker thread; thread labels registered via
/// Registry::labelCurrentThread are exported as `thread_name` metadata.
class ChromeTraceSink : public Sink {
public:
  void onSpan(const SpanRecord& span) override;
  void onCounter(const CounterRecord& counter) override;
  void onStep(const StepMetrics& step) override;

  /// Embeds a pre-serialized stats JSON document (mem::StatsRegistry::toJson)
  /// verbatim as the top-level "qddStats" member of the export.
  void setStatsJson(std::string json) { statsJson = std::move(json); }

  /// Number of buffered events (spans + counters + step instants).
  [[nodiscard]] std::size_t eventCount() const noexcept {
    return events.size();
  }

  /// Serializes the whole trace as one JSON document.
  [[nodiscard]] std::string toJson() const;
  /// Writes the trace to `path`; throws std::runtime_error on IO failure.
  void writeFile(const std::string& path) const;

private:
  struct Event {
    char phase = 'X'; ///< 'X' complete span, 'C' counter, 'i' instant
    std::string name;
    std::string category;
    double tsUs = 0.;
    double durUs = 0.; ///< 'X' only
    std::uint32_t tid = 0;
    std::vector<Arg> args;
  };

  std::vector<Event> events;
  std::string statsJson;
};

/// Streams one JSON object per record to an ostream, immediately — the
/// tail-able event feed for long runs (no buffering beyond the stream's).
class JsonlSink : public Sink {
public:
  /// The stream must outlive the sink.
  explicit JsonlSink(std::ostream& out) : out(out) {}

  void onSpan(const SpanRecord& span) override;
  void onCounter(const CounterRecord& counter) override;
  void onStep(const StepMetrics& step) override;
  void flush() override;

private:
  std::ostream& out;
};

/// Latency percentiles of one span population (category/name pair).
struct LatencySummary {
  std::size_t count = 0;
  double totalUs = 0.;
  double p50Us = 0.;
  double p95Us = 0.;
  double p99Us = 0.;
  double maxUs = 0.;
};

/// Aggregates spans into per-operation latency histograms and keeps the
/// per-step DD metrics series. Everything stays in memory; call the getters
/// after the run (or at any point in between). Recording and the summary
/// getters (percentileUs/summary/keys/peakStepNodes/summaryTable/toJson)
/// are mutually thread-safe, so a live /metrics endpoint can read while
/// workers record; the raw series accessors steps()/gcPausesUs() return
/// references and must not be iterated concurrently with recording.
class AggregatorSink : public Sink {
public:
  void onSpan(const SpanRecord& span) override;
  void onStep(const StepMetrics& step) override;

  /// Nearest-rank percentile (p in [0, 100]) over the samples recorded for
  /// `key` ("category/name"). Returns 0 for unknown keys.
  [[nodiscard]] double percentileUs(const std::string& key, double p) const;
  /// Summary of one span population; zeroed for unknown keys.
  [[nodiscard]] LatencySummary summary(const std::string& key) const;
  /// All keys with at least one sample, sorted.
  [[nodiscard]] std::vector<std::string> keys() const;

  [[nodiscard]] const std::vector<StepMetrics>& steps() const noexcept {
    return stepSeries;
  }
  /// Peak transient DD size over all recorded steps.
  [[nodiscard]] std::size_t peakStepNodes() const noexcept;
  /// Durations of every "dd/gc" span — the GC pause series.
  [[nodiscard]] const std::vector<double>& gcPausesUs() const noexcept {
    return gcPauses;
  }

  /// Human-readable profile table (count, total, p50/p95/p99, max per key).
  [[nodiscard]] std::string summaryTable() const;
  /// Single-line JSON rendering of all summaries + step-series aggregates
  /// (used by the BENCH_PROFILE bench records).
  [[nodiscard]] std::string toJson() const;

private:
  static constexpr std::size_t MAX_SAMPLES = 1U << 20U;

  /// Hot-path cache: span category/name are string literals, so their
  /// address pair identifies a population without building the "cat/name"
  /// string key on every record. Distinct literal addresses with equal text
  /// (e.g. the same span name in two translation units) resolve to the same
  /// canonical bucket on first use.
  struct Bucket {
    std::vector<double>* durations = nullptr;
    bool isGc = false;
  };
  Bucket& resolve(const SpanRecord& span);

  /// Recursive because the public getters compose (summary -> percentileUs,
  /// toJson -> keys/summary); all of them are cold paths.
  mutable std::recursive_mutex mutex;
  std::map<std::pair<const void*, const void*>, Bucket> buckets;
  std::map<std::string, std::vector<double>> samples;
  std::vector<StepMetrics> stepSeries;
  std::vector<double> gcPauses;
};

} // namespace qdd::obs
