#pragma once

// qdd::obs — always-on flight recorder for tail-based trace capture.
//
// Every thread that records spans while a TraceContext is installed writes
// them into its own fixed-size ring buffer. Writes are wait-free (a handful
// of relaxed atomic stores plus one release store of the ring cursor — no
// locks, no allocation, well under a microsecond), so the recorder can stay
// armed in production. Nothing is exported eagerly: only when a request
// turns out to be worth keeping (slow, ≥500, deadline-expired) does the
// service call capture() with the request's trace id and dump the matching
// events as a Chrome-trace incident (service::IncidentLog).
//
// Concurrency model: each ring has exactly one writer (its owning thread).
// capture() may run concurrently on any thread; every slot field is an
// individual relaxed atomic, and slots that were overwritten while being
// read are detected via the ring cursor and discarded — so a capture is
// race-free without ever stalling a writer.
//
// Rings are owned by the recorder, not the thread: a thread that exits
// leaves its ring (and the events in it) behind, so incidents can still be
// assembled from threads that have already terminated.

#include "qdd/obs/TraceContext.hpp"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace qdd::obs {

/// One captured span, the flight-recorder analog of SpanRecord. `category`
/// and `name` are the string literals the instrumentation site passed —
/// storing the pointers keeps the write path allocation-free.
struct FlightEvent {
  const char* category = "";
  const char* name = "";
  double startUs = 0.; ///< microseconds since the Registry epoch
  double durUs = 0.;
  std::uint64_t traceHi = 0;
  std::uint64_t traceLo = 0;
  std::uint32_t tid = 0; ///< Registry::currentThreadId of the writer
  std::int32_t depth = 0;
};

class FlightRecorder {
public:
  /// Events retained per thread. Power of two; at typical span rates this
  /// holds the last few hundred requests per worker — far more than the
  /// single request an incident capture needs.
  static constexpr std::size_t RING_CAPACITY = 1024;

  static FlightRecorder& instance();

  /// Process-wide arming flag (relaxed atomic). The recorder costs nothing
  /// while disarmed; qdd::service arms it when tracing is on.
  static bool armed() noexcept;
  static void setArmed(bool on) noexcept;

  /// True when a span recorded right now would be kept: the recorder is
  /// armed and the calling thread has a valid trace context installed.
  /// This is the per-span fast-path check (one relaxed load, then a
  /// thread-local read only when armed).
  static bool hot() noexcept { return armed() && currentTrace().valid(); }

  /// Records one completed span into the calling thread's ring, tagged
  /// with the thread's current trace context. Wait-free.
  void record(const char* category, const char* name, double startUs,
              double durUs, int depth) noexcept;

  /// All retained events tagged with the given trace id, sorted by start
  /// time (ties: longer span first, matching the Chrome export rule that
  /// enclosing spans precede their children).
  [[nodiscard]] std::vector<FlightEvent> capture(std::uint64_t traceHi,
                                                 std::uint64_t traceLo) const;

  /// Total events ever written (all rings; for tests and gauges).
  [[nodiscard]] std::uint64_t totalRecorded() const;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

private:
  FlightRecorder() = default;

  /// Individually-atomic mirror of FlightEvent. All stores/loads relaxed;
  /// publication order is carried by the ring cursor alone, and torn slots
  /// (overwritten mid-read) are discarded by index, never dereferenced
  /// inconsistently.
  struct Slot {
    std::atomic<const char*> category{nullptr};
    std::atomic<const char*> name{nullptr};
    std::atomic<double> startUs{0.};
    std::atomic<double> durUs{0.};
    std::atomic<std::uint64_t> traceHi{0};
    std::atomic<std::uint64_t> traceLo{0};
    std::atomic<std::int32_t> depth{0};
  };

  struct Ring {
    std::uint32_t tid = 0;
    /// Total writes ever; slot of write w is slots[w % RING_CAPACITY].
    /// Incremented (release) only after the slot's fields are stored.
    std::atomic<std::uint64_t> cursor{0};
    std::array<Slot, RING_CAPACITY> slots;
  };

  Ring& localRing();

  /// Guards ring registration and the rings vector — never taken on the
  /// record() path (the thread-local ring pointer is cached).
  mutable std::mutex ringsMutex;
  std::vector<std::unique_ptr<Ring>> rings;
};

} // namespace qdd::obs
