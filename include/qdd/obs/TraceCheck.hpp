#pragma once

// Structural validator for Chrome trace-event JSON documents produced by
// ChromeTraceSink (and, conservatively, by anything emitting the trace-event
// format). Used by tests, by the `qdd-trace-check` CLI, and by CI smoke runs.

#include <string>

namespace qdd::obs {

/// What `validateChromeTrace` found; all counts refer to the traceEvents
/// array of the validated document.
struct TraceCheckResult {
  bool valid = false;
  std::string error; ///< empty when valid
  std::size_t events = 0;
  std::size_t spans = 0;        ///< "X" events
  std::size_t counters = 0;     ///< "C" events
  std::size_t stepInstants = 0; ///< "i" events named "sim.step"
  std::size_t metadata = 0;     ///< "M" events (thread_name, ...)
  bool hasStats = false;        ///< top-level "qddStats" object present
};

/// Checks that `json` parses as strict JSON, has a "traceEvents" array whose
/// elements all carry name/ph (plus ts for everything except "M" metadata
/// events, and dur for "X" events), that `ts` is monotonically non-decreasing
/// in array order, and that "X" spans observe per-thread stack discipline:
/// within one `tid` track each span is either disjoint from or fully
/// contained in the enclosing open span (tracks of different threads may
/// overlap freely). With `requireStepMetrics`, at least one "sim.step"
/// instant must carry the per-step DD metric args (nodes,
/// cacheHitRatioDelta, nodesPerLevel, gcRuns).
TraceCheckResult validateChromeTrace(const std::string& json,
                                     bool requireStepMetrics = false);

/// Checks a flight-recorder incident dump (GET /v1/incidents/{id}): the
/// document must pass `validateChromeTrace`, carry a top-level "traceId"
/// that is 32 lowercase hex digits and not all-zero, and every "X" span's
/// args.trace_id must equal it — one incident is exactly one trace.
TraceCheckResult validateIncidentTrace(const std::string& json);

} // namespace qdd::obs
