#pragma once

// qdd::obs — low-overhead tracing and profiling for the DD engine.
//
// The subsystem has two gates:
//   * compile time: building with -DQDD_OBS=0 turns every macro below into
//     `(void)0` and every ScopedSpan into an empty object, so instrumented
//     code compiles to exactly what it was before instrumentation;
//   * run time: with QDD_OBS=1 (the default) nothing is recorded until
//     `Registry::instance().setEnabled(true)` — the only cost on a hot path
//     is one relaxed atomic load per instrumented scope.
//
// Instrumentation points open RAII `ScopedSpan`s (closed on scope exit,
// including exception unwinding) and emit counters / per-simulation-step
// metrics. Records flow to pluggable `Sink`s (see Sinks.hpp): a Chrome
// trace-event exporter, a JSONL event stream, and an in-memory aggregator
// that computes latency percentiles and the per-step DD metrics time series.

#ifndef QDD_OBS
#define QDD_OBS 1
#endif

#include "qdd/obs/FlightRecorder.hpp"
#include "qdd/obs/SpanGate.hpp"
#include "qdd/obs/TraceContext.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qdd::obs {

/// Argument attached to a span or step record — a small tagged value the
/// exporters know how to print without pulling in a JSON library. Keys are
/// string literals (`const char*`) so recording an argument never allocates
/// for the key — only string *values* own their storage.
struct Arg {
  enum class Kind : std::uint8_t { UInt, Double, Str };
  const char* key = "";
  Kind kind = Kind::UInt;
  std::uint64_t u = 0;
  double d = 0.;
  std::string s;

  static Arg uintArg(const char* key, std::uint64_t v) {
    Arg a;
    a.key = key;
    a.kind = Kind::UInt;
    a.u = v;
    return a;
  }
  static Arg doubleArg(const char* key, double v) {
    Arg a;
    a.key = key;
    a.kind = Kind::Double;
    a.d = v;
    return a;
  }
  static Arg strArg(const char* key, std::string v) {
    Arg a;
    a.key = key;
    a.kind = Kind::Str;
    a.s = std::move(v);
    return a;
  }
};

/// A completed span: a named, categorized interval on the (single) timeline.
/// `depth` is the nesting level at open (0 = top-level), so sinks and tests
/// can reconstruct the span stack without replaying begin/end pairs.
struct SpanRecord {
  const char* category = "";
  const char* name = "";
  double startUs = 0.; ///< microseconds since the registry epoch
  double durUs = 0.;
  int depth = 0;
  std::uint32_t tid = 0; ///< registry thread id (0 = first recording thread)
  /// 128-bit trace id of the request this span belongs to (0/0 when no
  /// TraceContext was installed — e.g. offline profiling runs).
  std::uint64_t traceHi = 0;
  std::uint64_t traceLo = 0;
  std::vector<Arg> args;
};

/// A sampled scalar (Chrome "C" counter track).
struct CounterRecord {
  const char* name = "";
  double value = 0.;
  double tsUs = 0.;
  std::uint32_t tid = 0;
  std::uint64_t traceHi = 0; ///< trace id, as on SpanRecord
  std::uint64_t traceLo = 0;
};

/// Per-simulation-step DD metrics — the time series the paper's web tool
/// visualizes while stepping: intermediate DD size (total and per level),
/// compute-cache behavior, and GC activity after each applied operation.
struct StepMetrics {
  std::size_t index = 0; ///< 0-based index of the applied operation
  std::string op;        ///< operation name
  std::size_t nodes = 0; ///< DD size after the step
  std::vector<std::size_t> nodesPerLevel; ///< active nodes per qubit level
  std::size_t cacheLookups = 0; ///< cumulative, summed over compute tables
  std::size_t cacheHits = 0;    ///< cumulative
  double cacheHitRatioDelta = 0.; ///< hit ratio of this step's lookups alone
  std::size_t realEntries = 0;    ///< real-number table entries
  std::size_t gcRuns = 0;         ///< cumulative GC runs
  double tsUs = 0.;               ///< completion time of the step
  double durUs = 0.;              ///< wall time of the step
  std::uint32_t tid = 0;          ///< registry thread id
};

/// Consumer of observability records. Callbacks are invoked synchronously
/// (under the registry lock) in the order events complete.
class Sink {
public:
  virtual ~Sink() = default;
  virtual void onSpan(const SpanRecord& span) = 0;
  virtual void onCounter(const CounterRecord& counter) { (void)counter; }
  virtual void onStep(const StepMetrics& step) { (void)step; }
  virtual void flush() {}
};

/// Process-wide registry: the runtime enable flag, the monotonic time origin,
/// and the sink list. All record entry points are no-ops while disabled.
class Registry {
public:
  static Registry& instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return on.load(std::memory_order_relaxed);
  }
  void setEnabled(bool e) noexcept {
    on.store(e, std::memory_order_relaxed);
    detail::setSpanGateBit(detail::SPAN_GATE_OBS, e);
  }

  void addSink(std::shared_ptr<Sink> sink);
  /// Detaches one sink again (no-op if it is not attached).
  void removeSink(const std::shared_ptr<Sink>& sink);
  void clearSinks();
  /// Flushes every attached sink.
  void flush();

  /// Microseconds since the registry epoch (process-wide steady clock, so
  /// every `ts` in an export is monotonic and mutually comparable).
  [[nodiscard]] double nowUs() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  }

  /// Current span nesting depth of this thread (exposed for tests: it must
  /// return to its pre-scope value even when scopes unwind via exceptions).
  /// The depth counter is thread-local, so concurrent spans on different
  /// threads nest independently.
  [[nodiscard]] static int currentDepth() noexcept { return depth(); }

  /// Small dense id of the calling thread, assigned on first use from a
  /// process-wide counter. The first thread that ever records (normally the
  /// main thread) gets id 0. Stable for the thread's lifetime; exporters use
  /// it as the Chrome trace `tid`.
  [[nodiscard]] static std::uint32_t currentThreadId() noexcept;

  /// Attaches a human-readable label (e.g. "worker-3") to the calling
  /// thread's id, exported as Chrome `thread_name` metadata.
  static void labelCurrentThread(std::string label);

  /// Snapshot of all (tid, label) pairs registered so far.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::string>>
  threadLabels() const;

  // --- record entry points (called by ScopedSpan / the macros) -------------

  void recordSpan(SpanRecord&& span);
  void recordCounter(const char* name, double value);
  void recordStep(StepMetrics&& step);

  /// Opens/closes a nesting level; returns the depth at open.
  static int enterSpan() noexcept { return depth()++; }
  static void exitSpan() noexcept { --depth(); }

private:
  Registry() : epoch(std::chrono::steady_clock::now()) {}
  static int& depth() noexcept {
    thread_local int d = 0;
    return d;
  }

  std::atomic<bool> on{false};
  std::chrono::steady_clock::time_point epoch;
  std::mutex mutex;
  std::vector<std::shared_ptr<Sink>> sinks;
  /// Guards `labels` separately from the record fan-out mutex, so labeling a
  /// thread never contends with the hot record path.
  mutable std::mutex labelMutex;
  std::vector<std::pair<std::uint32_t, std::string>> labels;
};

#if QDD_OBS

/// RAII span: records a SpanRecord for its lifetime when the registry is
/// enabled (and `condition` holds at construction). Destruction — normal or
/// via stack unwinding — closes the span, so nesting is always well-formed.
///
/// Independently of the registry, a span also feeds the FlightRecorder when
/// the recorder is armed and the thread carries a valid TraceContext — that
/// is the "always-on" tail-capture path: even with sinks disabled, spans of
/// an in-flight request land in the per-thread ring so the service can dump
/// them if the request turns out slow or failed.
class ScopedSpan {
public:
  ScopedSpan(const char* category, const char* name, bool condition = true) {
    // One inline relaxed load covers the overwhelmingly common "nobody is
    // recording" case; the authoritative flags are only consulted once some
    // consumer has opened the gate.
    if (!condition || !detail::spanGateOpen()) {
      return;
    }
    const bool obsOn = Registry::instance().enabled();
    const bool flightOn = FlightRecorder::hot();
    if (obsOn || flightOn) {
      record.category = category;
      record.name = name;
      record.startUs = Registry::instance().nowUs();
      record.depth = Registry::enterSpan();
      live = obsOn;
      flight = flightOn;
    }
  }
  ~ScopedSpan() {
    if (live || flight) {
      Registry::exitSpan();
      record.durUs = Registry::instance().nowUs() - record.startUs;
      if (flight) {
        FlightRecorder::instance().record(record.category, record.name,
                                          record.startUs, record.durUs,
                                          record.depth);
      }
      if (live) {
        Registry::instance().recordSpan(std::move(record));
      }
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  [[nodiscard]] bool active() const noexcept { return live; }

  void arg(const char* key, std::size_t value) {
    if (live) {
      reserveArgs();
      record.args.push_back(Arg::uintArg(key, value));
    }
  }
  void arg(const char* key, double value) {
    if (live) {
      reserveArgs();
      record.args.push_back(Arg::doubleArg(key, value));
    }
  }
  void arg(const char* key, const std::string& value) {
    if (live) {
      reserveArgs();
      record.args.push_back(Arg::strArg(key, value));
    }
  }

private:
  /// One up-front allocation instead of the 1/2/4/8 growth sequence.
  void reserveArgs() {
    if (record.args.capacity() == 0) {
      record.args.reserve(6);
    }
  }

  SpanRecord record;
  bool live = false;   ///< feeds the registry's sinks on destruction
  bool flight = false; ///< feeds the flight-recorder ring on destruction
};

#else // QDD_OBS == 0: spans compile to empty objects

class ScopedSpan {
public:
  ScopedSpan(const char*, const char*, bool = true) {}
  [[nodiscard]] bool active() const noexcept { return false; }
  void arg(const char*, std::size_t) {}
  void arg(const char*, double) {}
  void arg(const char*, const std::string&) {}
};

#endif

/// True when observability is compiled in and runtime-enabled.
inline bool enabled() noexcept {
#if QDD_OBS
  return Registry::instance().enabled();
#else
  return false;
#endif
}

#if QDD_OBS
#define QDD_OBS_CONCAT_INNER(a, b) a##b
#define QDD_OBS_CONCAT(a, b) QDD_OBS_CONCAT_INNER(a, b)
/// Opens an anonymous span covering the rest of the enclosing scope.
#define QDD_OBS_SPAN(category, name)                                           \
  ::qdd::obs::ScopedSpan QDD_OBS_CONCAT(qddObsSpan_, __LINE__)(category, name)
/// Samples a counter value (no-op while disabled).
#define QDD_OBS_COUNTER(name, value)                                           \
  do {                                                                         \
    if (::qdd::obs::Registry::instance().enabled()) {                          \
      ::qdd::obs::Registry::instance().recordCounter(                          \
          name, static_cast<double>(value));                                   \
    }                                                                          \
  } while (false)
#else
#define QDD_OBS_SPAN(category, name) static_cast<void>(0)
#define QDD_OBS_COUNTER(name, value) static_cast<void>(0)
#endif

} // namespace qdd::obs
