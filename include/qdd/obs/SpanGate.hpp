#pragma once

#include <atomic>

// Process-wide fast gate for span recording. ScopedSpan sits on every
// top-level DD operation; while neither the registry nor the flight recorder
// wants spans, its constructor must cost one inline relaxed load — not two
// out-of-line singleton accessors with guarded function-local statics.
//
// Bit 0 mirrors Registry's runtime enable flag, bit 1 the flight recorder's
// arming flag; the two setters keep their bit in sync. The gate is advisory
// in exactly one direction: when it reads zero, both subsystems are off and
// the span is skipped; when any bit is set, the authoritative flags are
// consulted as before.

namespace qdd::obs::detail {

inline constexpr unsigned SPAN_GATE_OBS = 1U;
inline constexpr unsigned SPAN_GATE_FLIGHT = 2U;

extern std::atomic<unsigned> spanGate;

inline void setSpanGateBit(unsigned bit, bool on) noexcept {
  if (on) {
    spanGate.fetch_or(bit, std::memory_order_relaxed);
  } else {
    spanGate.fetch_and(~bit, std::memory_order_relaxed);
  }
}

inline bool spanGateOpen() noexcept {
  return spanGate.load(std::memory_order_relaxed) != 0U;
}

} // namespace qdd::obs::detail
