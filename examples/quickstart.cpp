// Quickstart: build the Bell circuit of the paper's Fig. 1(c), simulate it
// with decision diagrams, inspect the resulting DD (Fig. 2(a)), sample
// measurement outcomes, and export the diagram for rendering.
//
// Build & run:  ./examples/quickstart

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/viz/DotExporter.hpp"
#include "qdd/viz/TextDump.hpp"

#include <cstdio>
#include <random>

int main() {
  using namespace qdd;

  // 1. Describe the circuit (or load one via qasm::parseFile /
  //    real::parseFile).
  const ir::QuantumComputation circuit = ir::builders::bell();
  std::printf("circuit (%zu qubits, %zu gates):\n%s\n",
              circuit.numQubits(), circuit.gateCount(),
              circuit.toOpenQASM().c_str());

  // 2. Simulate it on |00> using the decision-diagram package.
  Package pkg(circuit.numQubits());
  const vEdge state =
      bridge::simulate(circuit, pkg.makeZeroState(circuit.numQubits()), pkg);

  // 3. Inspect the result.
  std::printf("final state: %s\n", viz::toDirac(pkg, state).c_str());
  std::printf("decision diagram size: %zu nodes (terminal not counted)\n",
              Package::size(state));
  std::printf("amplitude of |11>: %s\n",
              pkg.getValueByIndex(state, 3).toString().c_str());

  // 4. Sample repeatedly — measurements of classically simulated states are
  //    non-destructive (paper Sec. III-B).
  std::mt19937_64 rng(42);
  std::printf("five samples:");
  for (int k = 0; k < 5; ++k) {
    std::printf(" %s", pkg.sample(state, rng).c_str());
  }
  std::printf("\n");

  // 5. Export the DD in the paper's "classic" style for Graphviz rendering.
  const viz::DotExporter exporter({.style = viz::Style::Classic});
  const std::string dot = exporter.toDot(viz::buildGraph(state));
  std::printf("\nGraphviz DOT (render with `dot -Tsvg`):\n%s", dot.c_str());
  return 0;
}
