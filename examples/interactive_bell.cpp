// Console reproduction of the tool's simulation tab on the paper's running
// example (Fig. 8): steps through the Bell circuit, prints the DD after
// every operation, pops the measurement "dialog" for qubit q0, and collapses
// the state as in Ex. 13.
//
// By default the measurement outcome |1> is chosen (matching Fig. 8(d));
// pass `--outcome 0` to pick |0>, or `--random` for a random outcome.

#include "qdd/ir/Builders.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/viz/TextDump.hpp"

#include <cstdio>
#include <cstring>
#include <string>

namespace {
void show(qdd::Package& pkg, qdd::sim::SimulationSession& session,
          const char* caption) {
  std::printf("--- %s\n", caption);
  std::printf("state: %s\n",
              qdd::viz::toDirac(pkg, session.state()).c_str());
  std::printf("%s\n",
              qdd::viz::asciiDump(qdd::viz::buildGraph(session.state()))
                  .c_str());
}
} // namespace

int main(int argc, char** argv) {
  using namespace qdd;

  int forcedOutcome = 1;
  bool randomOutcome = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--outcome") == 0 && a + 1 < argc) {
      forcedOutcome = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--random") == 0) {
      randomOutcome = true;
    }
  }

  auto circuit = ir::builders::bell();
  circuit.addClassicalRegister(2, "c");
  circuit.measure(0, 0);

  Package pkg(2);
  sim::SimulationSession session(circuit, pkg, /*seed=*/1);
  if (!randomOutcome) {
    session.setOutcomeChooser([&](Qubit q, double p0, double p1) {
      std::printf(">>> measurement dialog: qubit q%d is in superposition\n"
                  ">>>   p(|0>) = %.1f%%   p(|1>) = %.1f%%   -> choosing "
                  "|%d>\n",
                  q, 100. * p0, 100. * p1, forcedOutcome);
      return forcedOutcome;
    });
  }

  show(pkg, session, "initial state |00> (Fig. 8(a))");
  session.stepForward();
  show(pkg, session, "after H on q1");
  session.stepForward();
  show(pkg, session, "after CNOT: Bell state (Fig. 8(b))");
  session.stepForward();
  show(pkg, session, "after measuring q0 (Fig. 8(d))");
  std::printf("classical bits: c0=%d\n",
              session.classicalBits()[0] ? 1 : 0);

  // stepping backward works even across the (irreversible) measurement
  session.stepBackward();
  show(pkg, session, "one step back: Bell state restored");
  return 0;
}
