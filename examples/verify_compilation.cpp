// Verifying compilation results with decision diagrams (paper Sec. III-C,
// Ex. 10-12): compiles the n-qubit QFT into the CNOT + phase-gate set of
// Fig. 5(b) and checks equivalence with the construction scheme and each
// alternating strategy, reporting the peak node counts that make Ex. 12's
// point.
//
// Usage: ./examples/verify_compilation [num_qubits]

#include "qdd/ir/Builders.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv) {
  using namespace qdd;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;

  const auto qft = ir::builders::qft(n);
  const auto compiled = ir::decomposeToNativeGates(qft, /*insertBarriers=*/true);
  std::printf("QFT_%zu: %zu gates; compiled: %zu gates\n", n,
              qft.gateCount(), compiled.gateCount());

  const verify::EquivalenceChecker checker(qft, compiled);

  {
    Package pkg(n);
    const auto result = checker.checkByConstruction(pkg);
    std::printf("%-28s %-28s maxNodes=%-6zu finalNodes=%zu\n",
                "construction:", toString(result.equivalence).c_str(),
                result.maxNodes, result.finalNodes);
  }
  for (const auto strategy :
       {verify::Strategy::Sequential, verify::Strategy::OneToOne,
        verify::Strategy::Proportional, verify::Strategy::BarrierSync}) {
    Package pkg(n);
    const auto start = std::chrono::steady_clock::now();
    const auto result = checker.checkAlternating(pkg, strategy);
    const auto ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    std::printf("alternating/%-15s %-28s maxNodes=%-6zu (%.2f ms)\n",
                toString(strategy).c_str(),
                toString(result.equivalence).c_str(), result.maxNodes, ms);
  }
  {
    Package pkg(n);
    const auto result = checker.checkBySimulation(pkg, 16);
    std::printf("%-28s %s\n",
                "simulation (16 stimuli):",
                toString(result.equivalence).c_str());
  }

  // now inject a bug and watch every method catch it
  auto broken = ir::decomposeToNativeGates(qft, true);
  broken.t(0);
  const verify::EquivalenceChecker buggy(qft, broken);
  Package pkg(n);
  std::printf("\nwith an injected extra T gate:\n");
  std::printf("construction: %s\n",
              toString(buggy.checkByConstruction(pkg).equivalence).c_str());
  std::printf("alternating:  %s\n",
              toString(buggy.checkAlternating(pkg).equivalence).c_str());
  std::printf("simulation:   %s\n",
              toString(buggy.checkBySimulation(pkg, 16).equivalence).c_str());
  return 0;
}
