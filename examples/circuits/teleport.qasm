// Quantum teleportation: q2 holds the payload, (q1,q0) share a Bell pair;
// exercises measurement, classically controlled corrections, and reset.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c0[1];
creg c1[1];
// payload: arbitrary state on q2
ry(0.9) q[2];
rz(0.4) q[2];
// Bell pair between q1 and q0
h q[1];
cx q[1], q[0];
// Bell measurement of q2, q1
cx q[2], q[1];
h q[2];
measure q[1] -> c0[0];
measure q[2] -> c1[0];
// corrections on q0
if (c0 == 1) x q[0];
if (c1 == 1) z q[0];
