// Bell-pair preparation and measurement (paper Fig. 1(c) / Fig. 8)
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[1];
cx q[1], q[0];
measure q -> c;
