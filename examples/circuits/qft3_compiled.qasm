// Compiled three-qubit QFT (paper Fig. 5(b)): controlled phases and the
// SWAP rewritten into CNOTs + single-qubit phase gates; barriers mark the
// original gate boundaries used by the alternating verification (Ex. 12).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[2];
barrier q;
p(pi/4) q[1]; cx q[1], q[2]; p(-pi/4) q[2]; cx q[1], q[2]; p(pi/4) q[2];
barrier q;
p(pi/8) q[0]; cx q[0], q[2]; p(-pi/8) q[2]; cx q[0], q[2]; p(pi/8) q[2];
barrier q;
h q[1];
barrier q;
p(pi/4) q[0]; cx q[0], q[1]; p(-pi/4) q[1]; cx q[0], q[1]; p(pi/4) q[1];
barrier q;
h q[0];
barrier q;
cx q[0], q[2]; cx q[2], q[0]; cx q[0], q[2];
barrier q;
