// Algorithm zoo: runs every circuit builder of the library through the
// DD simulator and prints one summary row per algorithm — final state size,
// peak intermediate size, and what the state looks like. A quick tour of
// which quantum states decision diagrams represent compactly.
//
// Usage: ./examples/algorithm_zoo [max_qubits]   (default 10)

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/viz/TextDump.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace qdd;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;

  struct Entry {
    std::string name;
    ir::QuantumComputation qc;
  };
  std::vector<Entry> zoo;
  zoo.push_back({"bell", ir::builders::bell()});
  zoo.push_back({"ghz", ir::builders::ghz(n)});
  zoo.push_back({"wstate", ir::builders::wState(n)});
  zoo.push_back({"qft", ir::builders::qft(n)});
  zoo.push_back({"grover", ir::builders::grover(std::min<std::size_t>(n, 12),
                                                3)});
  zoo.push_back({"bernstein-vazirani",
                 ir::builders::bernsteinVazirani(n - 1, (1ULL << (n - 1)) - 1)});
  zoo.push_back({"deutsch-jozsa", ir::builders::deutschJozsa(n - 1, true)});
  zoo.push_back(
      {"phase-estimation", ir::builders::phaseEstimation(n - 1, 5)});
  zoo.push_back({"adder", ir::builders::rippleCarryAdder((n - 1) / 2)});
  zoo.push_back({"random-clifford+T",
                 ir::builders::randomCliffordT(n, 10 * n, 1)});

  std::printf("%-22s %-8s %-8s %-10s %-10s %-10s\n", "algorithm", "qubits",
              "gates", "final DD", "peak DD", "time (ms)");
  std::printf("---------------------------------------------------------"
              "-----------------\n");
  for (const auto& entry : zoo) {
    const std::size_t q = entry.qc.numQubits();
    Package pkg(q);
    bridge::BuildStats stats;
    const auto start = std::chrono::steady_clock::now();
    const vEdge state =
        bridge::simulate(entry.qc, pkg.makeZeroState(q), pkg, stats);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::printf("%-22s %-8zu %-8zu %-10zu %-10zu %-10.2f\n",
                entry.name.c_str(), q, entry.qc.gateCount(),
                Package::size(state), stats.maxNodes, ms);
  }
  std::printf("\nStructured states (GHZ, W, basis-like results of BV/DJ/"
              "QPE) stay linear; QFT output on |0..0> is a product state; "
              "random circuits trend toward the exponential worst case.\n");
  return 0;
}
