// Grover search simulated with decision diagrams: demonstrates the
// "efficient simulation" design task (paper Sec. III-B) on a workload where
// the DD stays small while the dense state vector grows as 2^n, and uses the
// weak-simulation sampler ([16]) to read out the result.
//
// Usage: ./examples/grover_simulation [num_qubits] [marked_state]

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/viz/TextDump.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv) {
  using namespace qdd;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::uint64_t marked =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (1ULL << n) - 2;

  const auto circuit = ir::builders::grover(n, marked);
  std::printf("Grover search: n=%zu qubits, marked state %llu, %zu gates\n",
              n, static_cast<unsigned long long>(marked),
              circuit.gateCount());

  Package pkg(n);
  bridge::BuildStats stats;
  const auto start = std::chrono::steady_clock::now();
  const vEdge state =
      bridge::simulate(circuit, pkg.makeZeroState(n), pkg, stats);
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  std::printf("simulation took %.2f ms\n", elapsed);
  std::printf("final DD: %zu nodes; peak intermediate DD: %zu nodes "
              "(dense state vector: %llu amplitudes)\n",
              Package::size(state), stats.maxNodes,
              static_cast<unsigned long long>(1ULL << n));

  const ComplexValue amp = pkg.getValueByIndex(state, marked);
  std::printf("probability of the marked state: %.4f\n", amp.mag2());

  // sample 1000 shots non-destructively
  auto sampled = circuit;
  sampled.measureAll();
  const sim::SamplingResult result = sim::sampleCircuit(sampled, 1000, 7);
  std::size_t hits = 0;
  std::string markedBits(n, '0');
  for (std::size_t k = 0; k < n; ++k) {
    if ((marked >> k) & 1ULL) {
      markedBits[n - 1 - k] = '1';
    }
  }
  if (const auto it = result.counts.find(markedBits);
      it != result.counts.end()) {
    hits = it->second;
  }
  std::printf("sampling 1000 shots: marked state measured %zu times\n", hits);
  return 0;
}
