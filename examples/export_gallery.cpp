// Produces the visualization gallery of the paper's figures as files:
// DOT/SVG/JSON exports of the decision diagrams of Fig. 2 (Bell state, H,
// CNOT), Fig. 3 (H (x) I2), and Fig. 6 (QFT functionality), in the classic,
// label-free colored, and modern styles of Fig. 7.
//
// Usage: ./examples/export_gallery [output_dir]   (default: ./gallery)

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/viz/DotExporter.hpp"
#include "qdd/viz/JsonExporter.hpp"
#include "qdd/viz/SvgExporter.hpp"

#include <cstdio>
#include <filesystem>
#include <string>

int main(int argc, char** argv) {
  using namespace qdd;
  const std::string dir = argc > 1 ? argv[1] : "gallery";
  std::filesystem::create_directories(dir);

  Package pkg(3);

  struct Item {
    std::string name;
    viz::Graph graph;
  };
  std::vector<Item> items;
  items.push_back({"fig2a_bell_state", viz::buildGraph(pkg.makeGHZState(2))});
  items.push_back(
      {"fig2b_hadamard", viz::buildGraph(pkg.makeGateDD(H_MAT, 1, 0))});
  items.push_back({"fig2c_cnot", viz::buildGraph(pkg.makeGateDD(
                                     X_MAT, 2, {{1, true}}, 0))});
  items.push_back(
      {"fig3_h_kron_i", viz::buildGraph(pkg.kron(pkg.makeGateDD(H_MAT, 1, 0),
                                                 pkg.makeIdent(1)))});
  const auto qft = ir::builders::qft(3);
  items.push_back(
      {"fig6_qft3_functionality",
       viz::buildGraph(bridge::buildFunctionality(qft, pkg))});

  const viz::ExportOptions classic{.style = viz::Style::Classic};
  const viz::ExportOptions colored{.style = viz::Style::Classic,
                                   .edgeLabels = false,
                                   .colored = true,
                                   .magnitudeThickness = true};
  const viz::ExportOptions modern{.style = viz::Style::Modern,
                                  .edgeLabels = false,
                                  .colored = true};

  std::size_t files = 0;
  for (const auto& item : items) {
    viz::DotExporter(classic).writeFile(dir + "/" + item.name + "_classic.dot",
                                        item.graph);
    viz::DotExporter(colored).writeFile(dir + "/" + item.name + "_colored.dot",
                                        item.graph);
    viz::DotExporter(modern).writeFile(dir + "/" + item.name + "_modern.dot",
                                       item.graph);
    viz::SvgExporter(classic).writeFile(dir + "/" + item.name + "_classic.svg",
                                        item.graph);
    viz::SvgExporter(colored).writeFile(dir + "/" + item.name + "_colored.svg",
                                        item.graph);
    viz::JsonExporter().writeFile(dir + "/" + item.name + ".json", item.graph);
    files += 6;
    std::printf("exported %-25s (%zu nodes)\n", item.name.c_str(),
                item.graph.nodes.size());
  }
  std::printf("%zu files written to %s/\n", files, dir.c_str());
  return 0;
}
