// Demonstrates the trade-off the paper describes for reset operations
// (Sec. IV-B): the tool's pure-state DDs handle reset *probabilistically*
// (a dialog picks the implicit measurement outcome) because "the partial
// trace maps pure states to mixed states". This example runs the same
// circuit through both engines:
//
//   1. the pure-state SimulationSession (per-outcome, like the web tool)
//   2. the DensityMatrixSimulator (exact mixture, no dialogs)
//
// and shows the purity drop when half of a Bell pair is reset.

#include "qdd/ir/Builders.hpp"
#include "qdd/sim/DensityMatrixSimulator.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/viz/TextDump.hpp"

#include <cstdio>

int main() {
  using namespace qdd;

  auto circuit = ir::builders::bell();
  circuit.reset(0); // reset one half of the entangled pair

  std::printf("circuit: Bell pair, then reset q0\n\n");

  // --- pure-state engine: one run per outcome ------------------------------
  for (const int outcome : {0, 1}) {
    Package pkg(2);
    sim::SimulationSession session(circuit, pkg);
    session.setOutcomeChooser(
        [outcome](Qubit, double, double) { return outcome; });
    while (session.stepForward()) {
    }
    std::printf("pure-state engine, dialog answers |%d>: state = %s\n",
                outcome, viz::toDirac(pkg, session.state()).c_str());
  }

  // --- density-matrix engine: the exact mixture ----------------------------
  Package pkg(2);
  sim::DensityMatrixSimulator dsim(circuit, pkg);
  dsim.run();
  std::printf("\ndensity-matrix engine (exact):\n");
  std::printf("  p(q1 = 1) = %.3f  (classical coin left behind by the "
              "destroyed entanglement)\n",
              dsim.probabilityOfOne(1));
  std::printf("  purity tr(rho^2) = %.3f  (1.0 would be a pure state; 0.5 "
              "is the maximally mixed qubit)\n",
              dsim.purity());
  std::printf("  density matrix DD: %zu nodes\n",
              Package::size(dsim.densityMatrix()));
  std::printf("\n=> this is why the paper's tool resolves resets through a "
              "probability dialog instead (Sec. IV-B).\n");
  return 0;
}
